"""Command line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro apps                    # Figures 2-4
    python -m repro table1 [--scale N]      # Table 1
    python -m repro fig5 [--mix K] [-r N]   # Figure 5 (+ Table 3 metrics)
    python -m repro fig6 [--mix K] [-r N]   # Figure 6 (Dyn-Aff-NoPri)
    python -m repro table4 [-r N]           # Table 4
    python -m repro future [--mix K] [-r N] # Figures 8-13
    python -m repro gantt [--mix K]         # allocation timelines
    python -m repro section8                # time-sharing contrast
    python -m repro hierarchy               # Section 7.2 sqrt-memory law
    python -m repro trace [--mix K] [--policy P] [--out F]  # JSONL trace
    python -m repro opensys [--scenario S] [--swf F]    # open-system matrix
    python -m repro analyze TRACE [--window S]  # attribution + interval series
    python -m repro diff TRACE_A TRACE_B        # why do two runs differ?
    python -m repro all                     # everything (slow)

The replication-based experiments accept ``--metrics``: the run is
instrumented with a metrics registry and the merged snapshot is printed
as key-sorted JSON after the experiment's own output, preceded by a
``=== metrics`` marker line.  ``--analyze`` additionally runs one traced
replication per policy and prints its exact time-attribution tables
(after ``=== analysis ===``); ``--profile`` collects a wall-clock
self-profile of the simulator and prints it after ``=== profile ===``.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.apps import APPLICATIONS
from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.engine.rng import RngRegistry
from repro.measure.runner import compare_policies, run_mix
from repro.measure.workloads import MIXES
from repro.model import (
    DEFAULT_PENALTIES,
    FutureMachineModel,
    observations_from_comparison,
    sweep_relative,
)
from repro.reporting.figures import ascii_chart, parallelism_histogram
from repro.reporting.tables import (
    render_relative_rt_table,
    render_table1,
    render_table3,
    render_table4,
)

_DYNAMIC_POLICIES = (DYNAMIC, DYN_AFF, DYN_AFF_DELAY)

_ALL_POLICIES = (
    EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY, DYN_AFF_NOPRI,
)
_POLICY_BY_NAME = {p.name: p for p in _ALL_POLICIES}

#: Marker line preceding a JSON metrics snapshot on stdout (tests and
#: scripts split on it to find the machine-readable part).
METRICS_MARKER = "=== metrics ==="
#: Marker line preceding per-policy time-attribution output (--analyze).
ANALYSIS_MARKER = "=== analysis ==="
#: Marker line preceding a simulator self-profile table (--profile).
PROFILE_MARKER = "=== profile ==="
#: Marker line preceding the live-run telemetry summary (--progress).
TELEMETRY_MARKER = "=== telemetry ==="


def _print_snapshot(snapshot: typing.Mapping[str, typing.Any], label: str = "") -> None:
    from repro.reporting.obs_export import snapshot_to_json

    print(METRICS_MARKER + (f" {label}" if label else ""))
    print(snapshot_to_json(snapshot), end="")


def _print_comparison_metrics(comparison) -> None:
    for policy in sorted(comparison.metrics):
        _print_snapshot(comparison.metrics[policy], label=policy)


def _print_profile(snapshot: typing.Mapping[str, typing.Any], label: str = "") -> None:
    from repro.reporting.analysis_report import render_profile_table

    print(PROFILE_MARKER + (f" {label}" if label else ""))
    print(render_profile_table(snapshot))


def _print_comparison_profiles(comparison) -> None:
    for policy in sorted(comparison.profiles):
        _print_profile(comparison.profiles[policy], label=policy)


def _print_analysis(
    mix_ids: typing.Sequence[int],
    policies: typing.Sequence[typing.Any],
    seed: int,
) -> None:
    """Run one traced replication per (mix, policy) and print attributions.

    The conservation laws are checked on the spot; a violation exits
    non-zero, because an attribution that does not conserve is wrong by
    construction and must never ship as an explanation.
    """
    from repro.obs import Tracer
    from repro.obs.analysis import attribute_time
    from repro.reporting.analysis_report import render_attribution_table

    for mix_id in mix_ids:
        for policy in policies:
            tracer = Tracer()
            run_mix(mix_id, policy, seed=seed, tracer=tracer)
            attribution = attribute_time(tracer.records)
            errors = attribution.conservation_errors()
            print(f"{ANALYSIS_MARKER} mix {mix_id} {policy.name}")
            print(render_attribution_table(attribution))
            if errors:
                print("CONSERVATION VIOLATED:")
                for message in errors:
                    print(f"  {message}")
                raise SystemExit(1)
            print("conservation: exact (buckets sum to makespan x P "
                  "and to per-job response times)")
            print()


def _scale_arg(value: str) -> int:
    """Fidelity scale: a positive integer (1 = full-fidelity cache)."""
    scale = int(value)
    if scale < 1:
        raise argparse.ArgumentTypeError("scale must be at least 1")
    return scale


def _seeds_arg(value: str) -> typing.Union[int, typing.Tuple[int, ...]]:
    """``--seeds``: a count ("3") or an explicit list ("1,2,5").

    Explicit lists are validated here (shared :func:`normalize_seeds`
    logic), so ``--seeds 1,1,2`` fails at parse time with the duplicate
    named instead of silently double-running a simulation.
    """
    from repro.sweep import normalize_seeds, parse_seeds_arg

    try:
        seeds = parse_seeds_arg(value)
        normalize_seeds(seeds)  # counts and lists both validated up front
        return seeds
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _sweep_cache(args: argparse.Namespace):
    """The command's result cache, or ``None`` when no ``--cache-dir``."""
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir:
        return None
    from repro.sweep import ResultCache

    return ResultCache(cache_dir)


def cmd_apps(args: argparse.Namespace) -> None:
    """Figures 2-4: per-application parallelism profiles."""
    rng = RngRegistry(args.seed)
    for name, spec in APPLICATIONS.items():
        graph = spec.build_graph(rng.stream(f"profile/{name}"))
        profile = graph.parallelism_profile(args.processors)
        print(parallelism_histogram(profile, name))
        print()


def cmd_table1(args: argparse.Namespace) -> None:
    """Table 1: cache penalties per application per Q (one sweep cell
    per (app, Q) pair; ``--cache-dir`` makes reruns serve from cache)."""
    from repro.sweep import SweepSpec, run_sweep
    from repro.sweep.cells import merged_metrics, merged_profile, penalty_table

    spec = SweepSpec(
        name="table1",
        kind="table1",
        seeds=(args.seed,),
        scale=args.scale,
        backend=getattr(args, "backend", None),
    )
    sweep = run_sweep(
        spec,
        cache=_sweep_cache(args),
        collect_metrics=getattr(args, "metrics", False),
        collect_profile=getattr(args, "profile", False),
    )
    payloads = sweep.payloads
    print(render_table1(penalty_table(spec, payloads)))
    snapshot = merged_metrics(spec, payloads)
    if snapshot is not None:
        _print_snapshot(snapshot)
    profile = merged_profile(spec, payloads)
    if profile is not None:
        _print_profile(profile)


def _mix_ids(args: argparse.Namespace) -> typing.List[int]:
    return [args.mix] if args.mix else sorted(MIXES)


def _mix_sweep(
    args: argparse.Namespace,
    name: str,
    mix_ids: typing.Sequence[int],
    policies: typing.Sequence[typing.Any],
) -> typing.Iterator[typing.Tuple[int, typing.Any]]:
    """Run a (mixes x policies x seeds) grid as ONE sweep and yield the
    per-mix comparisons, in mix order.

    Replaces the per-figure fan-out loops: every (mix, policy, seed)
    triple is a cached cell, so ``fig5 --cache-dir X`` and a later
    ``table4 --cache-dir X`` share any overlapping work, and a killed
    run resumes where it stopped.
    """
    from repro.sweep import SweepSpec, run_sweep
    from repro.sweep.cells import mix_comparison

    spec = SweepSpec(
        name=name,
        kind="mix",
        mixes=tuple(mix_ids),
        policies=tuple(p.name for p in policies),
        seeds=tuple(args.seed + r for r in range(args.replications)),
    )
    sweep = run_sweep(
        spec,
        cache=_sweep_cache(args),
        workers=getattr(args, "workers", None),
        collect_metrics=getattr(args, "metrics", False),
        collect_profile=getattr(args, "profile", False),
    )
    payloads = sweep.payloads
    for mix_id in mix_ids:
        yield mix_id, mix_comparison(spec, payloads, mix_id)


def cmd_fig5(args: argparse.Namespace) -> None:
    """Figure 5 + Table 3: dynamic policies relative to Equipartition."""
    csv_rows: typing.List[typing.Sequence[object]] = []
    policies = (EQUIPARTITION,) + _DYNAMIC_POLICIES
    for mix_id, comparison in _mix_sweep(args, "fig5", _mix_ids(args), policies):
        print(render_relative_rt_table(comparison))
        print()
        print(render_table3(comparison))
        print()
        _print_comparison_metrics(comparison)
        _print_comparison_profiles(comparison)
        if getattr(args, "analyze", False):
            _print_analysis([mix_id], policies, args.seed)
        if args.csv:
            for policy in comparison.policies():
                for job, summary in comparison.summaries[policy].items():
                    csv_rows.append(
                        [
                            mix_id,
                            policy,
                            job,
                            summary.response_time.mean,
                            summary.n_reallocations,
                            summary.pct_affinity,
                            summary.average_allocation,
                        ]
                    )
    if args.csv:
        from repro.reporting.export import rows_to_csv
        from repro.reporting.obs_export import write_artifact

        headers = [
            "mix", "policy", "job", "response_time_s",
            "n_reallocations", "pct_affinity", "average_allocation",
        ]
        write_artifact(args.csv, rows_to_csv(headers, csv_rows))
        print(f"wrote {len(csv_rows)} rows to {args.csv}")


def cmd_fig6(args: argparse.Namespace) -> None:
    """Figure 6: Dyn-Aff-NoPri relative to Equipartition."""
    policies = (EQUIPARTITION, DYN_AFF_NOPRI)
    for mix_id, comparison in _mix_sweep(args, "fig6", _mix_ids(args), policies):
        print(render_relative_rt_table(comparison))
        print()
        _print_comparison_metrics(comparison)
        _print_comparison_profiles(comparison)
        if getattr(args, "analyze", False):
            _print_analysis([mix_id], policies, args.seed)


def cmd_table4(args: argparse.Namespace) -> None:
    """Table 4: homogeneous workloads, Dyn-Aff vs Dyn-Aff-NoPri."""
    from repro.sweep import SweepSpec, run_sweep
    from repro.sweep.cells import (
        mean_response_table,
        merged_metrics,
        merged_profile,
    )

    spec = SweepSpec(
        name="table4",
        kind="mix",
        mixes=(1, 4),
        policies=(DYN_AFF.name, DYN_AFF_NOPRI.name),
        seeds=tuple(args.seed + r for r in range(args.replications)),
    )
    sweep = run_sweep(
        spec,
        cache=_sweep_cache(args),
        workers=getattr(args, "workers", None),
        collect_metrics=getattr(args, "metrics", False),
        collect_profile=getattr(args, "profile", False),
    )
    payloads = sweep.payloads
    print(render_table4(mean_response_table(spec, payloads)))
    snapshot = merged_metrics(spec, payloads)
    if snapshot is not None:
        _print_snapshot(snapshot)
    profile = merged_profile(spec, payloads)
    if profile is not None:
        _print_profile(profile)
    if getattr(args, "analyze", False):
        _print_analysis([1, 4], (DYN_AFF, DYN_AFF_NOPRI), args.seed)


def cmd_future(args: argparse.Namespace) -> None:
    """Figures 8-13: the extended model on future machines."""
    model = FutureMachineModel(DEFAULT_PENALTIES)
    for mix_id in _mix_ids(args):
        comparison = compare_policies(
            mix_id,
            (EQUIPARTITION,) + _DYNAMIC_POLICIES,
            replications=args.replications,
            base_seed=args.seed,
            workers=getattr(args, "workers", None),
            collect_metrics=getattr(args, "metrics", False),
        )
        _print_comparison_metrics(comparison)
        observations = observations_from_comparison(comparison)
        for job in comparison.job_names():
            series = {}
            for policy in ("Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"):
                sweep = sweep_relative(
                    model, observations[policy][job], observations["Equipartition"][job]
                )
                series[policy] = list(zip(sweep.products, sweep.ratios))
            print(
                ascii_chart(
                    series,
                    title=(
                        f"Workload #{mix_id}, job {job}: RT relative to "
                        "Equipartition vs processor-speed x cache-size"
                    ),
                    log_x=True,
                    y_label="rel RT",
                )
            )
            print()


def cmd_gantt(args: argparse.Namespace) -> None:
    """ASCII allocation timelines for a mix under several policies."""
    from repro.core.system import SchedulingSystem
    from repro.core.trace import AllocationTrace
    from repro.measure.workloads import make_jobs

    mix_id = args.mix if args.mix else 5
    for policy in (EQUIPARTITION, DYN_AFF, DYN_AFF_NOPRI):
        rng = RngRegistry(args.seed)
        jobs = make_jobs(mix_id, rng.spawn("workload"))
        trace = AllocationTrace()
        SchedulingSystem(
            jobs, policy, n_processors=16, seed=args.seed,
            rng=rng.spawn(f"system/{policy.name}"), trace=trace,
        ).run()
        print(f"=== workload #{mix_id} under {policy.name} ===")
        print(trace.render_gantt(width=72))
        print()


def cmd_section8(args: argparse.Namespace) -> None:
    """The time-sharing contrast of Section 8."""
    from repro.core.timesharing import (
        TIME_SHARING,
        TIME_SHARING_AFFINITY,
        TimeSharingSystem,
    )
    from repro.measure.runner import run_mix as _run_mix
    from repro.measure.workloads import make_jobs

    mix_id = args.mix if args.mix else 5
    rows = []
    for ts_policy in (TIME_SHARING, TIME_SHARING_AFFINITY):
        rng = RngRegistry(args.seed)
        jobs = make_jobs(mix_id, rng.spawn("workload"))
        result = TimeSharingSystem(
            jobs, ts_policy, n_processors=16, seed=args.seed,
            rng=rng.spawn(ts_policy.name),
        ).run()
        rows.append((ts_policy.name, result))
    for policy in (DYNAMIC, DYN_AFF):
        rows.append((policy.name, _run_mix(mix_id, policy, seed=args.seed)))
    print(f"workload #{mix_id}: time sharing vs space sharing")
    for name, result in rows:
        for job, m in sorted(result.jobs.items()):
            print(
                f"  {name:16s} {job:9s} RT {m.response_time:7.1f} s  "
                f"{m.n_reallocations:6d} reallocs  "
                f"{m.pct_affinity:3.0f}% affinity  "
                f"{m.cache_penalty_total:6.2f} s cache penalty"
            )


def cmd_hierarchy(args: argparse.Namespace) -> None:
    """Section 7.2's two-level-cache / sqrt-memory-law analysis."""
    from repro.machine.hierarchy import sqrt_memory_law_table

    print("required L2 hit rate for full processor speedup")
    print("  speed | constant memory | memory ~ sqrt(speed) | feasible")
    for speed, constant, sqrt_rate, feasible in sqrt_memory_law_table():
        print(f"  {speed:5.0f} | {constant:15.4f} | {sqrt_rate:20.4f} | {feasible}")


def cmd_trace(args: argparse.Namespace) -> None:
    """Run one mix instrumented, export the trace, and self-check it.

    The written trace is verified on the spot: the invariant layer must
    find zero violations and replaying the record stream must reproduce
    the run's own aggregates exactly.  A failed check exits non-zero, so
    a bad trace can never be silently shipped as an artifact.
    ``--format columnar`` writes the compact columnar container instead
    of JSONL (both round-trip losslessly; see ``repro convert``).
    """
    from repro.obs import MetricsRegistry, Tracer
    from repro.obs.invariants import check_trace
    from repro.obs.replay import verify_replay
    from repro.obs.store import write_columnar
    from repro.reporting.obs_export import trace_to_jsonl, write_artifact

    policy = _POLICY_BY_NAME[args.policy]
    mix_id = args.mix if args.mix else 5
    tracer = Tracer(capture_engine_events=args.engine_events)
    registry = MetricsRegistry() if args.metrics else None
    result = run_mix(
        mix_id, policy, seed=args.seed, tracer=tracer, metrics=registry
    )
    violations = check_trace(tracer.records)
    replay_errors = verify_replay(tracer.records, result)
    if args.format == "columnar":
        write_columnar(args.out, tracer.records)
    else:
        write_artifact(args.out, trace_to_jsonl(tracer.records))
    print(
        f"wrote {len(tracer.records)} records for workload #{mix_id} "
        f"under {policy.name} to {args.out}"
    )
    print(f"invariant violations: {len(violations)}")
    for message in violations[:20]:
        print(f"  {message}")
    print("replay check: " + ("exact" if not replay_errors else "MISMATCH"))
    for message in replay_errors[:20]:
        print(f"  {message}")
    if registry is not None:
        _print_snapshot(registry.snapshot())
    if violations or replay_errors:
        raise SystemExit(1)


def cmd_opensys(args: argparse.Namespace) -> None:
    """Open-system (scenario x policy x seed) matrix, or an SWF replay.

    Renders the seed-aggregated cell table; ``--json`` exports it,
    ``--metrics`` prints per-cell merged snapshots (``--metrics-csv``
    writes them as one wide CSV under a stable union header), and
    ``--trace`` additionally runs one fully traced cell (first scenario,
    first policy, base seed), self-checks the trace against the
    invariant and replay oracles, and writes it — exiting non-zero if
    either oracle objects, exactly like ``repro trace``.  ``--progress``
    streams live per-cell heartbeats to stderr while the sweep runs and
    prints a ``=== telemetry ===`` summary after the table.
    """
    from repro.obs.telemetry import TelemetryCollector, progress_line
    from repro.reporting.obs_export import write_artifact
    from repro.reporting.opensys_report import matrix_to_json, render_matrix_table
    from repro.sweep import SweepSpec, normalize_seeds, run_sweep
    from repro.sweep.spec import OPENSYS_SCENARIOS
    from repro.workloads.opensys import (
        SwfScenario,
        built_in_scenarios,
        run_matrix,
        run_scenario,
    )

    seed_values = normalize_seeds(args.seeds, args.seed)
    policy_names = args.policy or sorted(_POLICY_BY_NAME)
    policies = [_POLICY_BY_NAME[name] for name in policy_names]
    collect_metrics = args.metrics or bool(args.metrics_csv)

    collector = None
    telemetry_sink = None
    if args.progress:
        collector = TelemetryCollector()

        def telemetry_sink(snapshot, _collector=collector):
            _collector(snapshot)
            print(progress_line(snapshot), file=sys.stderr)

    if args.swf:
        # SWF replays are file-shaped, not declaratively keyable: they run
        # on the direct matrix runner, never through the result cache.
        scenarios: typing.List[typing.Any] = [
            SwfScenario.from_file(
                args.swf,
                time_scale=args.time_scale,
                work_scale=args.work_scale,
                max_jobs=args.max_jobs,
            )
        ]
        on_commit = None
        if args.progress:
            def on_commit(index, batch):
                print(
                    f"[matrix] seed batch {index + 1}/{len(seed_values)} "
                    "committed",
                    file=sys.stderr,
                )

        comparison = run_matrix(
            scenarios,
            policies,
            seeds=seed_values,
            n_processors=args.processors,
            workers=args.workers,
            collect_metrics=collect_metrics,
            telemetry=telemetry_sink,
            on_commit=on_commit,
        )
    else:
        from repro.sweep.cells import matrix_comparison

        spec = SweepSpec(
            name="opensys",
            kind="opensys",
            scenarios=(
                OPENSYS_SCENARIOS
                if args.scenario == "all"
                else (args.scenario,)
            ),
            policies=tuple(policy_names),
            seeds=seed_values,
            n_processors=args.processors,
            lite=args.lite,
        )
        on_commit_shard = None
        if args.progress:
            def on_commit_shard(index, payloads):
                print(
                    f"[sweep] shard {index + 1} committed "
                    f"({len(payloads)} cells)",
                    file=sys.stderr,
                )

        sweep = run_sweep(
            spec,
            cache=_sweep_cache(args),
            workers=args.workers,
            collect_metrics=collect_metrics,
            telemetry=telemetry_sink,
            on_commit=on_commit_shard,
        )
        comparison = matrix_comparison(spec, sweep.payloads)
    print(render_matrix_table(comparison))
    if collector is not None:
        print(TELEMETRY_MARKER)
        print(collector.render_summary(), end="")
    if args.json:
        write_artifact(args.json, matrix_to_json(comparison))
        print(f"wrote matrix JSON to {args.json}")
    if args.metrics:
        for key in sorted(comparison.metrics):
            _print_snapshot(comparison.metrics[key], label="/".join(key))
    if args.metrics_csv:
        from repro.reporting.obs_export import snapshots_to_csv

        keys = sorted(comparison.metrics)
        csv_text = snapshots_to_csv(
            [comparison.metrics[key] for key in keys],
            labels=["/".join(key) for key in keys],
        )
        write_artifact(args.metrics_csv, csv_text)
        print(f"wrote per-cell metrics CSV to {args.metrics_csv}")

    if args.trace:
        from repro.obs import Tracer
        from repro.obs.invariants import check_trace
        from repro.obs.replay import verify_replay
        from repro.obs.store import write_columnar
        from repro.reporting.obs_export import trace_to_jsonl, write_artifact

        if args.swf:
            trace_scenario = scenarios[0]
        else:
            trace_scenario = built_in_scenarios(
                lite=args.lite, n_processors=args.processors
            )[spec.scenarios[0]]
        tracer = Tracer()
        result = run_scenario(
            trace_scenario,
            policies[0],
            seed=args.seed,
            n_processors=args.processors,
            tracer=tracer,
        )
        violations = check_trace(tracer.records)
        replay_errors = verify_replay(tracer.records, result.system)
        if args.trace_format == "columnar":
            write_columnar(args.trace, tracer.records)
        else:
            write_artifact(args.trace, trace_to_jsonl(tracer.records))
        print(
            f"wrote {len(tracer.records)} records for scenario "
            f"{result.scenario!r} under {result.policy} to {args.trace}"
        )
        print(f"invariant violations: {len(violations)}")
        for message in violations[:20]:
            print(f"  {message}")
        print("replay check: " + ("exact" if not replay_errors else "MISMATCH"))
        for message in replay_errors[:20]:
            print(f"  {message}")
        if violations or replay_errors:
            raise SystemExit(1)


def cmd_analyze(args: argparse.Namespace) -> None:
    """Time attribution + interval series (+ timeline) for a trace file.

    Accepts JSONL and columnar traces (sniffed by content) and streams
    the file once per analysis pass instead of holding a record list.
    Refuses truncated or incomplete artifacts with a clear error and a
    non-zero exit; exits non-zero too if the attribution fails its own
    conservation laws (an explanation that does not add up must never be
    shipped).
    """
    from repro.obs.analysis import attribute_time, interval_series
    from repro.reporting.analysis_report import (
        render_attribution_table,
        render_interval_series,
    )
    from repro.reporting.obs_export import (
        TraceStreamError,
        attribution_to_csv,
        attribution_to_json,
        intervals_to_csv,
        intervals_to_json,
        stream_trace,
        write_artifact,
    )
    from repro.reporting.timeline import render_cpu_timeline

    try:
        attribution = attribute_time(stream_trace(args.trace, fmt=args.format))
    except TraceStreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)
    errors = attribution.conservation_errors()
    print(render_attribution_table(attribution))
    if errors:
        print("CONSERVATION VIOLATED:")
        for message in errors:
            print(f"  {message}")
        raise SystemExit(1)
    print("conservation: exact (buckets sum to makespan x P and to "
          "per-job response times)")
    window = args.window
    if window is None:
        # Default: ~20 windows across the run.
        span = float(attribution.makespan - attribution.t0)
        window = max(span / 20, 1e-9)
    # Each pass re-streams the artifact: framing was already accepted
    # above, and memory stays bounded by one record.
    series = interval_series(
        stream_trace(args.trace, fmt=args.format), window_s=window
    )
    print()
    print(render_interval_series(series))
    if args.timeline:
        print()
        # The timeline renderer indexes into the record sequence, so
        # this pass (and only this one) materializes the stream.
        print(render_cpu_timeline(
            list(stream_trace(args.trace, fmt=args.format)),
            width=args.timeline_width,
        ))
    if args.json:
        write_artifact(args.json, attribution_to_json(attribution))
        print(f"wrote attribution JSON to {args.json}")
    if args.csv:
        write_artifact(args.csv, attribution_to_csv(attribution))
        print(f"wrote attribution CSV to {args.csv}")
    if args.intervals_json:
        write_artifact(args.intervals_json, intervals_to_json(series))
        print(f"wrote interval series JSON to {args.intervals_json}")
    if args.intervals_csv:
        write_artifact(args.intervals_csv, intervals_to_csv(series))
        print(f"wrote interval series CSV to {args.intervals_csv}")


def cmd_diff(args: argparse.Namespace) -> None:
    """Align two traces and explain where their response times diverge.

    Accepts JSONL and columnar inputs in any combination (sniffed by
    content), streamed straight into the aligner.
    """
    from repro.obs.analysis import diff_traces
    from repro.reporting.analysis_report import render_diff_report
    from repro.reporting.obs_export import (
        TraceStreamError,
        diff_to_json,
        stream_trace,
        write_artifact,
    )

    try:
        diff = diff_traces(
            stream_trace(args.trace_a),
            stream_trace(args.trace_b),
            label_a=args.label_a or args.trace_a,
            label_b=args.label_b or args.trace_b,
        )
    except TraceStreamError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)
    print(render_diff_report(diff))
    if args.json:
        write_artifact(args.json, diff_to_json(diff))
        print(f"wrote diff JSON to {args.json}")


def cmd_convert(args: argparse.Namespace) -> None:
    """Convert a trace between JSONL and the columnar store format.

    The input format is sniffed by content; ``--to`` picks the output
    (default: the other one).  Conversion is streaming and lossless —
    ``jsonl -> columnar -> jsonl`` reproduces the original bytes.
    """
    from repro.obs.store import (
        ColumnarFormatError,
        columnar_to_jsonl,
        jsonl_to_columnar,
        sniff_format,
    )

    try:
        src_fmt = sniff_format(args.src)
        dst_fmt = args.to or ("columnar" if src_fmt == "jsonl" else "jsonl")
        if src_fmt == dst_fmt:
            print(
                f"error: {args.src} is already {src_fmt}", file=sys.stderr
            )
            raise SystemExit(1)
        if dst_fmt == "columnar":
            count = jsonl_to_columnar(args.src, args.dst)
        else:
            count = columnar_to_jsonl(args.src, args.dst)
    except ColumnarFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)
    print(f"converted {count} records: {args.src} ({src_fmt}) -> "
          f"{args.dst} ({dst_fmt})")


def cmd_bench_report(args: argparse.Namespace) -> None:
    """Compare fresh pytest-benchmark JSON against the committed baseline."""
    from repro.reporting.bench_report import compare_benchmarks, render_bench_report

    try:
        report = compare_benchmarks(
            args.fresh, args.baseline, threshold=args.threshold
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)
    print(render_bench_report(report))
    if report.regressions:
        raise SystemExit(1)


def cmd_sweep(args: argparse.Namespace) -> None:
    """Declarative sweeps: ``repro sweep run|status|clean spec.{toml,json}``.

    ``run`` expands the spec, serves cached cells, computes the rest in
    resumable shards (kill it, run it again: only missing cells
    recompute), and renders the kind-appropriate report.  ``status``
    reports cache occupancy without running anything; ``clean`` evicts
    the spec's cells for the current code fingerprint.
    """
    from repro.obs.telemetry import TelemetryCollector, progress_line
    from repro.sweep import ResultCache, load_spec, run_sweep
    from repro.sweep.executor import sweep_clean, sweep_status

    try:
        spec = load_spec(args.spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1)
    cache = ResultCache(args.cache_dir)

    if args.sweep_command == "status":
        status = sweep_status(spec, cache)
        print(f"sweep '{spec.name}' ({spec.kind}): "
              f"{status.n_cells} cells, {status.n_cached} cached, "
              f"{status.n_pending} pending")
        print(f"cache: {cache.root}")
        print(f"journal: {status.journal_path or '(none yet)'}")
        return
    if args.sweep_command == "clean":
        removed = sweep_clean(spec, cache)
        print(f"sweep '{spec.name}': evicted {removed} cached cell(s) "
              f"from {cache.root}")
        return

    collector = None
    telemetry_sink = None
    on_commit = None
    if args.progress:
        collector = TelemetryCollector()

        def telemetry_sink(snapshot, _collector=collector):
            _collector(snapshot)
            print(progress_line(snapshot), file=sys.stderr)

        def on_commit(index, payloads):
            print(
                f"[sweep] shard {index + 1} committed ({len(payloads)} cells)",
                file=sys.stderr,
            )

    sweep = run_sweep(
        spec,
        cache=cache,
        workers=args.workers,
        force=args.force,
        collect_metrics=args.metrics,
        telemetry=telemetry_sink,
        on_commit=on_commit,
    )
    print(f"sweep '{spec.name}' ({spec.kind}): "
          f"{len(sweep.outcomes)} cells, {sweep.n_hits} cache hits, "
          f"{sweep.n_computed} computed")
    print(f"journal: {sweep.journal_path}")
    payloads = sweep.payloads
    if spec.kind == "opensys":
        from repro.reporting.opensys_report import render_matrix_table
        from repro.sweep.cells import matrix_comparison

        print(render_matrix_table(matrix_comparison(spec, payloads)))
    elif spec.kind == "table1":
        from repro.sweep.cells import penalty_table

        for seed in spec.seeds:
            if len(spec.seeds) > 1:
                print(f"--- seed {seed} ---")
            print(render_table1(penalty_table(spec, payloads, seed=seed)))
    else:  # mix
        from repro.sweep.cells import mix_comparison

        for mix_id in spec.mixes:
            comparison = mix_comparison(spec, payloads, mix_id)
            print(f"workload #{mix_id}: mean response time per policy")
            for policy in spec.policies:
                print(f"  {policy:16s} "
                      f"{comparison.mean_response_time(policy):9.2f} s")
    if args.metrics:
        from repro.sweep.cells import merged_metrics

        snapshot = merged_metrics(spec, payloads)
        if snapshot is not None:
            _print_snapshot(snapshot)
    if collector is not None:
        print(TELEMETRY_MARKER)
        print(collector.render_summary(), end="")


def cmd_all(args: argparse.Namespace) -> None:
    """Every experiment in paper order."""
    cmd_apps(args)
    cmd_table1(args)
    cmd_fig5(args)
    cmd_fig6(args)
    cmd_table4(args)
    cmd_future(args)
    cmd_section8(args)
    cmd_hierarchy(args)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Vaswani & Zahorjan (SOSP 1991): cache affinity and "
            "processor scheduling"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_apps = sub.add_parser("apps", help="Figures 2-4: application profiles")
    p_apps.add_argument("--processors", type=int, default=16)
    p_apps.set_defaults(func=cmd_apps)

    p_t1 = sub.add_parser("table1", help="Table 1: cache penalties")
    p_t1.add_argument(
        "--scale", type=_scale_arg, default=16,
        help="fidelity reduction factor (1 = full cache, every touch simulated)",
    )
    p_t1.add_argument(
        "--metrics", action="store_true",
        help="print a JSON metrics snapshot after the table",
    )
    p_t1.add_argument(
        "--profile", action="store_true",
        help="print a wall-clock simulator self-profile after the table",
    )
    p_t1.add_argument(
        "--backend", choices=("scalar", "numpy"), default=None,
        help="cache and reference-generator engine "
        "(default: REPRO_BACKEND env var, then scalar)",
    )
    p_t1.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="serve (app, Q) cells from this content-addressed result "
        "cache, computing and storing only what is missing",
    )
    p_t1.set_defaults(func=cmd_table1)

    for name, func, help_text in (
        ("fig5", cmd_fig5, "Figure 5 + Table 3: policy comparison"),
        ("fig6", cmd_fig6, "Figure 6: Dyn-Aff-NoPri"),
        ("future", cmd_future, "Figures 8-13: future machines"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--mix", type=int, choices=sorted(MIXES), default=None)
        p.add_argument("-r", "--replications", type=int, default=3)
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help=(
                "run replications across N worker processes; results are "
                "identical to a serial run for the same seed (default: serial)"
            ),
        )
        p.add_argument(
            "--metrics", action="store_true",
            help="print per-policy JSON metrics snapshots after the tables",
        )
        if name in ("fig5", "fig6"):
            p.add_argument(
                "--analyze", action="store_true",
                help=(
                    "run one traced replication per policy and print its "
                    "exact time-attribution tables"
                ),
            )
            p.add_argument(
                "--profile", action="store_true",
                help="collect and print per-policy simulator self-profiles",
            )
        if name == "fig5":
            p.add_argument("--csv", type=str, default=None,
                           help="also write per-job metrics to this CSV file")
        if name in ("fig5", "fig6"):
            p.add_argument(
                "--cache-dir", type=str, default=None, metavar="DIR",
                help="serve (mix, policy, seed) cells from this "
                "content-addressed result cache",
            )
        p.set_defaults(func=func)

    p_t4 = sub.add_parser("table4", help="Table 4: homogeneous workloads")
    p_t4.add_argument("-r", "--replications", type=int, default=3)
    p_t4.add_argument(
        "--metrics", action="store_true",
        help="print a JSON metrics snapshot after the table",
    )
    p_t4.add_argument(
        "--analyze", action="store_true",
        help="print exact time-attribution tables for one traced run per policy",
    )
    p_t4.add_argument(
        "--profile", action="store_true",
        help="print a wall-clock simulator self-profile after the table",
    )
    p_t4.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="serve (mix, policy, seed) cells from this content-addressed "
        "result cache (shared with fig5/fig6 sweeps)",
    )
    p_t4.set_defaults(func=cmd_table4)

    p_gantt = sub.add_parser("gantt", help="ASCII allocation timelines")
    p_gantt.add_argument("--mix", type=int, choices=sorted(MIXES), default=None)
    p_gantt.set_defaults(func=cmd_gantt)

    p_s8 = sub.add_parser("section8", help="time-sharing vs space-sharing contrast")
    p_s8.add_argument("--mix", type=int, choices=sorted(MIXES), default=None)
    p_s8.set_defaults(func=cmd_section8)

    p_hier = sub.add_parser("hierarchy", help="Section 7.2 sqrt-memory-law table")
    p_hier.set_defaults(func=cmd_hierarchy)

    p_trace = sub.add_parser(
        "trace", help="run one mix instrumented and export a JSONL trace"
    )
    p_trace.add_argument("--mix", type=int, choices=sorted(MIXES), default=None)
    p_trace.add_argument(
        "--policy", choices=sorted(_POLICY_BY_NAME), default=DYN_AFF.name,
    )
    p_trace.add_argument(
        "--out", type=str, default="trace.jsonl",
        help="output path for the JSONL trace (default: trace.jsonl)",
    )
    p_trace.add_argument(
        "--metrics", action="store_true",
        help="also print a JSON metrics snapshot",
    )
    p_trace.add_argument(
        "--engine-events", action="store_true",
        help="include every engine event firing in the trace (verbose)",
    )
    p_trace.add_argument(
        "--format", choices=("jsonl", "columnar"), default="jsonl",
        help="trace container format to write (default: jsonl)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_os = sub.add_parser(
        "opensys",
        help="open-system scenarios: arrivals, disruptions, SWF replay",
    )
    p_os.add_argument(
        "--scenario",
        choices=("steady", "bursty", "cancellations", "failures", "all"),
        default="all",
        help="built-in scenario to run (default: all four)",
    )
    p_os.add_argument(
        "--policy", action="append", choices=sorted(_POLICY_BY_NAME),
        default=None, metavar="NAME",
        help="policy to include, repeatable (default: all five)",
    )
    p_os.add_argument(
        "--seeds", type=_seeds_arg, default=3, metavar="N|A,B,...",
        help="seeds per cell: a count starting at --seed (default: 3) or "
        "an explicit comma-separated list; duplicates are rejected",
    )
    p_os.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "run seeds across N worker processes; results are identical "
            "to a serial run (default: serial)"
        ),
    )
    p_os.add_argument("--processors", type=int, default=16)
    p_os.add_argument(
        "--lite", action="store_true",
        help="fast synthetic job templates instead of the real app specs",
    )
    p_os.add_argument(
        "--swf", type=str, default=None, metavar="FILE",
        help="replay this Standard Workload Format trace instead of a "
        "built-in scenario",
    )
    p_os.add_argument(
        "--time-scale", type=float, default=1.0, metavar="X",
        help="divide SWF submit times by X (default: 1)",
    )
    p_os.add_argument(
        "--work-scale", type=float, default=1.0, metavar="X",
        help="divide SWF runtimes by X (default: 1)",
    )
    p_os.add_argument(
        "--max-jobs", type=int, default=0, metavar="N",
        help="truncate the SWF trace to its first N jobs (default: all)",
    )
    p_os.add_argument(
        "--json", type=str, default=None, metavar="FILE",
        help="write the per-cell matrix summary as JSON to this file",
    )
    p_os.add_argument(
        "--metrics", action="store_true",
        help="print per-cell merged JSON metrics snapshots after the table",
    )
    p_os.add_argument(
        "--trace", type=str, default=None, metavar="FILE",
        help="also run one traced cell (first scenario/policy, base seed), "
        "self-check it, and write the trace here",
    )
    p_os.add_argument(
        "--trace-format", choices=("jsonl", "columnar"), default="jsonl",
        help="container format for --trace output (default: jsonl)",
    )
    p_os.add_argument(
        "--metrics-csv", type=str, default=None, metavar="FILE",
        help="write per-cell merged metrics as one wide CSV (stable "
        "union header across cells) to this file",
    )
    p_os.add_argument(
        "--progress", action="store_true",
        help="stream live per-cell heartbeats to stderr and print a "
        "telemetry summary after the table",
    )
    p_os.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="serve built-in (scenario, policy, seed) cells from this "
        "content-addressed result cache (ignored for --swf replays)",
    )
    p_os.set_defaults(func=cmd_opensys)

    p_sw = sub.add_parser(
        "sweep",
        help="declarative sweeps over a content-addressed result cache",
    )
    sw_sub = p_sw.add_subparsers(dest="sweep_command", required=True)
    sw_common = []
    for sw_name, sw_help in (
        ("run", "expand the spec, serve cached cells, compute the rest"),
        ("status", "report cache occupancy for the spec without running"),
        ("clean", "evict the spec's cached cells (current code only)"),
    ):
        p = sw_sub.add_parser(sw_name, help=sw_help)
        p.add_argument("spec", type=str, help="sweep spec file (.toml or .json)")
        p.add_argument(
            "--cache-dir", type=str, default=".repro-cache", metavar="DIR",
            help="result cache root (default: .repro-cache)",
        )
        p.set_defaults(func=cmd_sweep)
        sw_common.append(p)
    p_sw_run = sw_common[0]
    p_sw_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="compute pending cells across N worker processes; results "
        "are identical to a serial run (default: serial)",
    )
    p_sw_run.add_argument(
        "--force", action="store_true",
        help="recompute every cell even if cached (results are re-stored)",
    )
    p_sw_run.add_argument(
        "--metrics", action="store_true",
        help="collect per-cell metrics and print the merged snapshot",
    )
    p_sw_run.add_argument(
        "--progress", action="store_true",
        help="stream live per-cell heartbeats to stderr and print a "
        "telemetry summary",
    )

    p_an = sub.add_parser(
        "analyze",
        help="time attribution + interval series for a trace file",
    )
    p_an.add_argument(
        "trace", type=str,
        help="trace file, JSONL or columnar (from `repro trace`)",
    )
    p_an.add_argument(
        "--format", choices=("jsonl", "columnar"), default=None,
        help="input trace format (default: sniff by content)",
    )
    p_an.add_argument(
        "--window", type=float, default=None, metavar="S",
        help="interval-series window in virtual seconds (default: span/20)",
    )
    p_an.add_argument(
        "--timeline", action="store_true",
        help="also render the ASCII per-CPU timeline",
    )
    p_an.add_argument(
        "--timeline-width", type=int, default=80, metavar="COLS",
        help="timeline width in columns (default: 80)",
    )
    p_an.add_argument("--json", type=str, default=None,
                      help="write the attribution as JSON to this file")
    p_an.add_argument("--csv", type=str, default=None,
                      help="write the attribution as CSV to this file")
    p_an.add_argument("--intervals-json", type=str, default=None,
                      help="write the interval series as JSON to this file")
    p_an.add_argument("--intervals-csv", type=str, default=None,
                      help="write the interval series as CSV to this file")
    p_an.set_defaults(func=cmd_analyze)

    p_diff = sub.add_parser(
        "diff", help="align two traces and explain their response-time gap"
    )
    p_diff.add_argument("trace_a", type=str, help="baseline JSONL trace (A)")
    p_diff.add_argument("trace_b", type=str, help="comparison JSONL trace (B)")
    p_diff.add_argument("--label-a", type=str, default=None)
    p_diff.add_argument("--label-b", type=str, default=None)
    p_diff.add_argument("--json", type=str, default=None,
                        help="write the diff as JSON to this file")
    p_diff.set_defaults(func=cmd_diff)

    p_conv = sub.add_parser(
        "convert", help="convert a trace between JSONL and columnar"
    )
    p_conv.add_argument("src", type=str, help="input trace (format sniffed)")
    p_conv.add_argument("dst", type=str, help="output path")
    p_conv.add_argument(
        "--to", choices=("jsonl", "columnar"), default=None,
        help="output format (default: the other one)",
    )
    p_conv.set_defaults(func=cmd_convert)

    p_bench = sub.add_parser(
        "bench-report",
        help="compare fresh pytest-benchmark JSON against the committed baseline",
    )
    p_bench.add_argument(
        "fresh", type=str, help="fresh --benchmark-json output to check"
    )
    p_bench.add_argument(
        "--baseline", type=str, default="BENCH_simulator.json",
        help="committed baseline JSON (default: BENCH_simulator.json)",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=1.25, metavar="X",
        help="fail when a benchmark's mean exceeds baseline x X (default: 1.25)",
    )
    p_bench.set_defaults(func=cmd_bench_report)

    p_all = sub.add_parser("all", help="run every experiment (slow)")
    p_all.add_argument("--mix", type=int, choices=sorted(MIXES), default=None)
    p_all.add_argument("-r", "--replications", type=int, default=3)
    p_all.add_argument("--processors", type=int, default=16)
    p_all.add_argument("--scale", type=_scale_arg, default=16)
    p_all.add_argument("--csv", type=str, default=None)
    p_all.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the replication-based experiments",
    )
    p_all.set_defaults(func=cmd_all)
    return parser


def main(argv: typing.Optional[typing.Sequence[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
