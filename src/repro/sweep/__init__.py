"""Declarative sweep orchestration over a content-addressed result cache.

Layers: :mod:`repro.sweep.spec` (what to run), :mod:`repro.sweep.cache`
(where results live and how they are keyed), :mod:`repro.sweep.cells`
(how one cell runs and serializes), :mod:`repro.sweep.executor` (the
resumable sharded driver).

Only the leaf ``spec``/``cache`` symbols are imported eagerly; the
executor and cell runner pull in the full experiment stack — including
:mod:`repro.workloads.opensys.scenario`, which itself imports
:func:`~repro.sweep.spec.normalize_seeds` from this package — so they
load lazily (PEP 562) to keep that edge acyclic.
"""

from __future__ import annotations

import typing

from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache, cell_key, code_fingerprint
from repro.sweep.spec import (
    SweepCell,
    SweepSpec,
    load_spec,
    normalize_seeds,
    parse_seeds_arg,
    spec_from_dict,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "SweepCell",
    "SweepSpec",
    "cell_key",
    "code_fingerprint",
    "load_spec",
    "normalize_seeds",
    "parse_seeds_arg",
    "run_sweep",
    "spec_from_dict",
    "sweep_clean",
    "sweep_status",
]

_LAZY = {
    "run_sweep": "repro.sweep.executor",
    "sweep_status": "repro.sweep.executor",
    "sweep_clean": "repro.sweep.executor",
    "CellOutcome": "repro.sweep.executor",
    "SweepResult": "repro.sweep.executor",
    "SweepStatus": "repro.sweep.executor",
    "run_cell": "repro.sweep.cells",
}


def __getattr__(name: str) -> typing.Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
