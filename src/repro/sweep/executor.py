"""Resumable sharded execution of sweep specs over the result cache.

:func:`run_sweep` expands a spec, asks the cache which cells already
exist, partitions the *pending* cells into shards, and fans the shards
out over the PR 1 ordered-commit process-pool runner
(:func:`repro.engine.parallel.map_items`).  Workers persist each cell
into the cache as they finish it (result file last, atomically — the
commit marker); the parent appends one journal line per completed cell
as each shard commits, in shard order, before acknowledging the shard to
``on_commit``.

Resume is re-execution: run the same spec again and the expansion is
identical (specs expand deterministically), cached cells are skipped,
and only the cells whose results never committed are recomputed.  Since
every cell's payload is a pure function of its config, the assembled
output of an interrupted-then-resumed sweep is bit-identical to an
uninterrupted one — the journal is an audit trail of *when* cells
landed, never the source of truth for *what* they contain (the cache
is; a cell cached after a crash but before its journal line is simply a
hit on resume).

Telemetry: pass a :class:`~repro.obs.telemetry.TelemetrySink` and every
running cell streams heartbeats home (across process boundaries when
``workers > 1``), labelled by cell.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import math
import os
import typing

from repro.engine.parallel import map_items, resolve_workers
from repro.obs.telemetry import HeartbeatEmitter, TelemetryChannel, TelemetrySink
from repro.sweep.cache import ResultCache, cell_key, code_fingerprint
from repro.sweep.cells import run_cell, strip_transient
from repro.sweep.spec import SweepCell, SweepSpec

#: Journal line schema (every line is one JSON object tagged with this).
JOURNAL_SCHEMA = "repro.sweep.journal/1"


@dataclasses.dataclass(frozen=True)
class CellOutcome:
    """One cell of a finished sweep: its payload and where it came from."""

    cell: SweepCell
    key: str
    payload: typing.Dict[str, typing.Any]
    cached: bool


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Everything :func:`run_sweep` produced, in spec expansion order."""

    spec: SweepSpec
    outcomes: typing.Tuple[CellOutcome, ...]
    n_hits: int
    n_computed: int
    journal_path: typing.Optional[str]

    @property
    def payloads(self) -> typing.Dict[SweepCell, typing.Dict[str, typing.Any]]:
        """cell -> payload, the form the report assemblers consume."""
        return {outcome.cell: outcome.payload for outcome in self.outcomes}


@dataclasses.dataclass(frozen=True)
class SweepStatus:
    """Cache occupancy of a spec without running anything."""

    spec: SweepSpec
    n_cells: int
    n_cached: int
    journal_path: typing.Optional[str]

    @property
    def n_pending(self) -> int:
        return self.n_cells - self.n_cached


def _run_shard(
    shard: typing.Tuple[typing.Tuple[str, str, str], ...],
    collect_metrics: bool,
    collect_profile: bool,
    cache_root: typing.Optional[str],
    store_traces: bool,
    fingerprint: str,
    telemetry_sink: typing.Optional[TelemetrySink] = None,
) -> typing.List[typing.Dict[str, typing.Any]]:
    """Compute one shard's cells; persist each into the cache as it lands.

    ``shard`` entries are ``(kind, config_json, key)`` — plain strings,
    so the task pickles cheaply into pool workers.  Each cell is cached
    the moment it finishes (not at shard end): a crash mid-shard loses
    at most the cell in flight.
    """
    cache = ResultCache(cache_root) if cache_root is not None else None
    out: typing.List[typing.Dict[str, typing.Any]] = []
    for kind, config_json, key in shard:
        cell = SweepCell(kind=kind, config_json=config_json)
        heartbeat = (
            HeartbeatEmitter(telemetry_sink, label=cell.label)
            if telemetry_sink is not None
            else None
        )
        tracer = None
        if cache is not None and store_traces:
            from repro.obs import Tracer

            tracer = Tracer()
        payload = run_cell(
            cell,
            collect_metrics=collect_metrics,
            collect_profile=collect_profile,
            tracer=tracer,
            heartbeat=heartbeat,
        )
        if cache is not None:
            if tracer is not None:
                from repro.obs.store.format import write_columnar

                os.makedirs(cache.cell_dir(key), exist_ok=True)
                write_columnar(cache.trace_path(key), tracer.records)
            cache.store(cell, key, strip_transient(payload), fingerprint)
        out.append(payload)
    return out


def _usable_hit(
    payload: typing.Optional[typing.Dict[str, typing.Any]],
    collect_metrics: bool,
) -> bool:
    """Does a cached payload satisfy this run's collection flags?

    A cell cached without metrics cannot serve a ``--metrics`` run; it
    is recomputed (and re-cached, now with its snapshot).  Profiles are
    wall-clock and never cached, so a profiling run recomputes
    everything by construction (handled by the caller).
    """
    if payload is None:
        return False
    if collect_metrics and payload.get("metrics") is None:
        return False
    return True


def _served_form(
    payload: typing.Dict[str, typing.Any], collect_metrics: bool
) -> typing.Dict[str, typing.Any]:
    """Shape a payload to the caller's flags (drop unrequested metrics)."""
    if not collect_metrics and payload.get("metrics") is not None:
        return {k: v for k, v in payload.items() if k != "metrics"}
    return payload


def _journal_paths(cache: ResultCache, spec: SweepSpec) -> typing.Tuple[str, str]:
    sweep_dir = os.path.join(cache.root, "sweeps", spec.name)
    return sweep_dir, os.path.join(sweep_dir, "journal.jsonl")


def run_sweep(
    spec: SweepSpec,
    cache: typing.Optional[ResultCache] = None,
    workers: typing.Optional[int] = None,
    force: bool = False,
    collect_metrics: bool = False,
    collect_profile: bool = False,
    telemetry: typing.Optional[TelemetrySink] = None,
    on_commit: typing.Optional[
        typing.Callable[[int, typing.List[typing.Dict[str, typing.Any]]], None]
    ] = None,
    shard_size: typing.Optional[int] = None,
) -> SweepResult:
    """Run ``spec``, serving cached cells and computing the rest.

    With no ``cache`` this is a plain in-memory fan-out.  With one,
    cached cells are loaded (a hit is byte-identical to recomputing —
    cells are pure functions of their config and JSON floats round-trip
    exactly) and pending cells are computed in shards, each worker
    committing its results to the cache cell-by-cell.  ``force=True``
    recomputes everything; ``collect_profile=True`` also bypasses hits,
    because profiles are wall-clock measurements that are never cached.

    ``on_commit(shard_index, payloads)`` fires per shard in shard order,
    after the shard's cells are journaled.  Outcomes are returned in
    spec expansion order regardless of what was cached.
    """
    cells = spec.expand()
    fingerprint = code_fingerprint()
    keyed = [(cell, cell_key(cell, fingerprint)) for cell in cells]

    hits: typing.Dict[SweepCell, typing.Dict[str, typing.Any]] = {}
    pending: typing.List[typing.Tuple[SweepCell, str]] = []
    serve_hits = cache is not None and not force and not collect_profile
    for cell, key in keyed:
        payload = cache.load(key) if serve_hits else None
        if _usable_hit(payload, collect_metrics):
            hits[cell] = typing.cast(typing.Dict[str, typing.Any], payload)
        else:
            pending.append((cell, key))

    journal_path: typing.Optional[str] = None
    journal_fh: typing.Optional[typing.TextIO] = None
    if cache is not None:
        sweep_dir, journal_path = _journal_paths(cache, spec)
        os.makedirs(sweep_dir, exist_ok=True)
        journal_fh = open(journal_path, "a", encoding="utf-8")

    def journal(event: typing.Dict[str, typing.Any]) -> None:
        # Append-only, flushed and fsynced per line: a crash can truncate
        # the journal only at a line boundary of already-acknowledged work.
        if journal_fh is None:
            return
        event = {"schema": JOURNAL_SCHEMA, **event}
        journal_fh.write(json.dumps(event, sort_keys=True) + "\n")
        journal_fh.flush()
        os.fsync(journal_fh.fileno())

    computed: typing.Dict[SweepCell, typing.Dict[str, typing.Any]] = {}
    shards: typing.List[typing.List[typing.Tuple[SweepCell, str]]] = []
    try:
        journal({
            "event": "run_start",
            "spec": spec.name,
            "kind": spec.kind,
            "code_fingerprint": fingerprint,
            "n_cells": len(cells),
            "n_cached": len(hits),
            "n_pending": len(pending),
        })
        if pending:
            n_workers = resolve_workers(workers)
            if shard_size is None:
                # Aim for ~4 shards per worker: coarse enough to amortize
                # task overhead, fine enough that a crash or a straggler
                # costs a fraction of the run.
                shard_size = max(1, math.ceil(len(pending) / max(1, 4 * n_workers)))
            if shard_size < 1:
                raise ValueError("shard_size must be positive")
            shards = [
                pending[i:i + shard_size]
                for i in range(0, len(pending), shard_size)
            ]
            tasks = [
                tuple((cell.kind, cell.config_json, key) for cell, key in shard)
                for shard in shards
            ]
            channel = (
                TelemetryChannel(n_workers, telemetry)
                if telemetry is not None
                else None
            )

            def commit(index: int, payloads: typing.List[dict]) -> None:
                for (cell, key), payload in zip(shards[index], payloads):
                    journal({
                        "event": "cell_done",
                        "shard": index,
                        "key": key,
                        "label": cell.label,
                        "cached": False,
                    })
                if on_commit is not None:
                    on_commit(index, payloads)

            try:
                run_shard = functools.partial(
                    _run_shard,
                    collect_metrics=collect_metrics,
                    collect_profile=collect_profile,
                    cache_root=cache.root if cache is not None else None,
                    store_traces=spec.store_traces,
                    fingerprint=fingerprint,
                    telemetry_sink=channel.sink if channel is not None else None,
                )
                shard_results = map_items(
                    run_shard, tasks, workers=workers, on_commit=commit
                )
            finally:
                if channel is not None:
                    channel.close()
            for shard, payloads in zip(shards, shard_results):
                for (cell, _), payload in zip(shard, payloads):
                    computed[cell] = payload
        journal({
            "event": "run_end",
            "spec": spec.name,
            "n_computed": len(pending),
            "n_hits": len(hits),
        })
    finally:
        if journal_fh is not None:
            journal_fh.close()

    outcomes = tuple(
        CellOutcome(
            cell=cell,
            key=key,
            payload=_served_form(
                hits[cell] if cell in hits else computed[cell], collect_metrics
            ),
            cached=cell in hits,
        )
        for cell, key in keyed
    )
    return SweepResult(
        spec=spec,
        outcomes=outcomes,
        n_hits=len(hits),
        n_computed=len(pending),
        journal_path=journal_path,
    )


def sweep_status(spec: SweepSpec, cache: ResultCache) -> SweepStatus:
    """How much of ``spec`` the cache already holds (runs nothing)."""
    fingerprint = code_fingerprint()
    cells = spec.expand()
    cached = sum(1 for cell in cells if cache.has(cell_key(cell, fingerprint)))
    _, journal_path = _journal_paths(cache, spec)
    return SweepStatus(
        spec=spec,
        n_cells=len(cells),
        n_cached=cached,
        journal_path=journal_path if os.path.exists(journal_path) else None,
    )


def sweep_clean(spec: SweepSpec, cache: ResultCache) -> int:
    """Evict every cached cell of ``spec`` (current code fingerprint only).

    Returns the number of entries removed.  Entries keyed by other
    fingerprints or other specs are untouched; the journal is kept as
    history.
    """
    fingerprint = code_fingerprint()
    removed = 0
    for cell in spec.expand():
        if cache.evict(cell_key(cell, fingerprint)):
            removed += 1
    return removed
