"""Declarative sweep specs: named axes expanding to deterministic cells.

A :class:`SweepSpec` names *axes* — policies, workload mixes or
open-system scenarios or measured applications, seeds, machine size,
engine backend — and :meth:`SweepSpec.expand` multiplies them into a
stable, deterministically ordered tuple of :class:`SweepCell` work
units.  Every reproduction target in this repository (Table 1, Figures
5/6, Table 4, the open-system matrix) is one such spec; the executor in
:mod:`repro.sweep.executor` runs any of them through the same
content-addressed cache.

A cell is pure data: its canonical (key-sorted, compact) JSON config is
what the cache key hashes, so two specs that overlap — ``repro table4``
re-asking for a (mix, policy, seed) triple ``repro fig5`` already
computed — share the cached result.

Specs load from TOML (Python 3.11+) or JSON files; see :func:`load_spec`.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.core.policies import (
    DYN_AFF,
    DYN_AFF_DELAY,
    DYN_AFF_NOPRI,
    DYNAMIC,
    EQUIPARTITION,
)
from repro.measure.workloads import MIXES

#: Sweep spec schema identifier, part of every cell's cache key.
SPEC_SCHEMA = "repro.sweep.spec/1"

#: The cell kinds the executor knows how to run.
CELL_KINDS = ("mix", "opensys", "table1")

#: Policy display name -> policy object (the sweep axes speak names).
POLICIES_BY_NAME = {
    p.name: p
    for p in (EQUIPARTITION, DYNAMIC, DYN_AFF, DYN_AFF_DELAY, DYN_AFF_NOPRI)
}

#: Names of the built-in open-system scenarios.  Hardcoded rather than
#: imported so this module stays a leaf (the scenario module itself
#: imports :func:`normalize_seeds` from here); a test pins the two lists
#: together.
OPENSYS_SCENARIOS = ("steady", "bursty", "cancellations", "failures")

#: The Table 1 applications and rescheduling quanta (paper defaults).
TABLE1_APPS = ("MATRIX", "MVA", "GRAVITY")
TABLE1_QUANTA_S = (0.025, 0.100, 0.400)


def normalize_seeds(
    seeds: typing.Union[int, typing.Sequence[int]],
    base_seed: int = 0,
) -> typing.Tuple[int, ...]:
    """The one shared seed-axis validator (CLI, ``run_matrix``, specs).

    ``seeds`` is either a *count* (``3`` -> ``base_seed .. base_seed+2``)
    or an explicit seed list.  Duplicate seeds are rejected, not deduped:
    a duplicated seed silently runs the identical simulation twice and
    double-weights it in every pooled statistic — and in the result
    cache the two cells would collide on one key anyway.

    Raises:
        ValueError: on a non-positive count, an empty list, a non-integer
            entry, or duplicates (named in the message).
    """
    if isinstance(seeds, bool):
        raise ValueError(f"seeds must be a count or a list of ints, got {seeds!r}")
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError(f"need at least one seed, got count {seeds}")
        return tuple(base_seed + r for r in range(seeds))
    values: typing.List[int] = []
    for value in seeds:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"seed {value!r} is not an integer")
        values.append(value)
    if not values:
        raise ValueError("need at least one seed, got an empty list")
    seen: typing.Set[int] = set()
    duplicates = sorted({v for v in values if v in seen or seen.add(v)})  # type: ignore[func-returns-value]
    if duplicates:
        raise ValueError(
            f"duplicate seeds {duplicates}: each seed runs the identical "
            "simulation, so repeating one double-counts its results "
            "(and collides in the result cache)"
        )
    return tuple(values)


def parse_seeds_arg(text: str) -> typing.Union[int, typing.Tuple[int, ...]]:
    """Parse a CLI ``--seeds`` value: a count, or a comma-separated list.

    ``"3"`` means three seeds starting at the base seed; ``"1,2,5"``
    means exactly those seeds; a trailing comma (``"5,"``) forces a
    one-element explicit list.  Validation of duplicates happens in
    :func:`normalize_seeds`, shared with every other entry point.
    """
    text = text.strip()
    if "," not in text:
        return int(text)
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts:
        raise ValueError(f"no seeds in {text!r}")
    return tuple(int(p) for p in parts)


def canonical_json(payload: typing.Any) -> str:
    """Key-sorted, compact JSON — the hashing/equality form of a config."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclasses.dataclass(frozen=True, order=True)
class SweepCell:
    """One unit of sweep work: a kind plus its canonical config.

    The config is stored as canonical JSON so cells are hashable,
    orderable, and picklable; :attr:`config` parses it back on demand.
    Equality of two cells is byte-equality of their canonical form —
    exactly the identity the content-addressed cache keys on.
    """

    kind: str
    config_json: str

    @classmethod
    def make(cls, kind: str, config: typing.Mapping[str, typing.Any]) -> "SweepCell":
        if kind not in CELL_KINDS:
            raise ValueError(f"unknown cell kind {kind!r}; expected one of {CELL_KINDS}")
        return cls(kind=kind, config_json=canonical_json(dict(config)))

    @property
    def config(self) -> typing.Dict[str, typing.Any]:
        """The cell's parameters as a plain dict."""
        return json.loads(self.config_json)

    @property
    def seed(self) -> int:
        return self.config.get("seed", 0)

    @property
    def label(self) -> str:
        """Short human-readable identity (progress lines, journal)."""
        c = self.config
        if self.kind == "mix":
            return f"mix{c['mix']}/{c['policy']}/seed{c['seed']}"
        if self.kind == "opensys":
            return f"{c['scenario']}/{c['policy']}/seed{c['seed']}"
        return f"table1/{c['app']}/q{c['q_s']:g}/seed{c['seed']}"


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: named axes over one cell kind.

    Axis fields are interpreted per ``kind``:

    * ``"mix"`` — ``mixes`` (Table 2 ids) x ``policies`` x ``seeds`` on
      ``n_processors`` CPUs;
    * ``"opensys"`` — ``scenarios`` (built-in names) x ``policies`` x
      ``seeds``, with ``lite``/``utilization`` shaping the scenario set;
    * ``"table1"`` — ``apps`` x ``quanta`` x ``seeds`` single-processor
      penalty measurements at fidelity ``scale``.

    ``backend`` (``None``/``"scalar"``/``"numpy"``) picks the cache and
    reference-generator engines for ``table1`` cells (the only kind that
    touches them) and is part of those cells' identity; note that
    ``None`` ("resolve from the environment at run time") is a *distinct*
    key from an explicit ``"scalar"`` — keyed sweeps should name their
    engine.  ``store_traces`` additionally persists each
    computed cell's full trace as a columnar ``trace.rct`` in its cache
    entry.
    """

    name: str
    kind: str
    policies: typing.Tuple[str, ...] = ()
    seeds: typing.Tuple[int, ...] = (0,)
    n_processors: int = 16
    backend: typing.Optional[str] = None
    store_traces: bool = False
    # mix axes
    mixes: typing.Tuple[int, ...] = ()
    # opensys axes
    scenarios: typing.Tuple[str, ...] = ()
    lite: bool = False
    utilization: float = 0.5
    # table1 axes
    apps: typing.Tuple[str, ...] = ()
    quanta: typing.Tuple[float, ...] = ()
    scale: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a sweep spec needs a name")
        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"unknown sweep kind {self.kind!r}; expected one of {CELL_KINDS}"
            )
        object.__setattr__(self, "seeds", normalize_seeds(self.seeds))
        for axis in ("policies", "mixes", "scenarios", "apps", "quanta"):
            values = getattr(self, axis)
            if len(set(values)) != len(values):
                raise ValueError(
                    f"duplicate entries in {axis} {list(values)}: repeated "
                    "axis values would run identical cells twice"
                )
        if self.n_processors < 1:
            raise ValueError("n_processors must be positive")
        if self.backend not in (None, "scalar", "numpy"):
            raise ValueError(
                f"backend must be 'scalar', 'numpy', or omitted, got {self.backend!r}"
            )
        if self.kind in ("mix", "opensys"):
            if not self.policies:
                raise ValueError(f"a {self.kind!r} sweep needs at least one policy")
            for policy in self.policies:
                if policy not in POLICIES_BY_NAME:
                    raise ValueError(
                        f"unknown policy {policy!r}; expected one of "
                        f"{sorted(POLICIES_BY_NAME)}"
                    )
        if self.kind == "mix":
            if not self.mixes:
                raise ValueError("a 'mix' sweep needs at least one mix id")
            for mix in self.mixes:
                if mix not in MIXES:
                    raise ValueError(
                        f"unknown mix {mix!r}; expected one of {sorted(MIXES)}"
                    )
        elif self.kind == "opensys":
            if not self.scenarios:
                raise ValueError("an 'opensys' sweep needs at least one scenario")
            for scenario in self.scenarios:
                if scenario not in OPENSYS_SCENARIOS:
                    raise ValueError(
                        f"unknown scenario {scenario!r}; expected one of "
                        f"{list(OPENSYS_SCENARIOS)}"
                    )
            if not 0 < self.utilization < 1:
                raise ValueError("utilization must be in (0, 1)")
        elif self.kind == "table1":
            apps = self.apps or TABLE1_APPS
            object.__setattr__(self, "apps", tuple(apps))
            for app in self.apps:
                if app not in TABLE1_APPS:
                    raise ValueError(
                        f"unknown application {app!r}; expected one of "
                        f"{list(TABLE1_APPS)}"
                    )
            quanta = self.quanta or TABLE1_QUANTA_S
            object.__setattr__(self, "quanta", tuple(float(q) for q in quanta))
            if any(q <= 0 for q in self.quanta):
                raise ValueError("quanta must be positive")
            if self.scale < 1:
                raise ValueError("scale must be at least 1")

    # ------------------------------------------------------------------ #

    def expand(self) -> typing.Tuple[SweepCell, ...]:
        """The spec's full cell list, in stable declaration order.

        Order is (primary axis, policy-or-quantum, seed) exactly as the
        axes were declared — never sorted, never dependent on dict or
        set iteration — so the same spec always yields the same list and
        journals/commit indices are comparable across runs.
        """
        cells: typing.List[SweepCell] = []
        if self.kind == "mix":
            for mix in self.mixes:
                for policy in self.policies:
                    for seed in self.seeds:
                        cells.append(SweepCell.make("mix", {
                            "mix": mix,
                            "policy": policy,
                            "seed": seed,
                            "n_processors": self.n_processors,
                        }))
        elif self.kind == "opensys":
            for scenario in self.scenarios:
                for policy in self.policies:
                    for seed in self.seeds:
                        cells.append(SweepCell.make("opensys", {
                            "scenario": scenario,
                            "policy": policy,
                            "seed": seed,
                            "n_processors": self.n_processors,
                            "lite": self.lite,
                            "utilization": self.utilization,
                        }))
        else:  # table1
            for app in self.apps:
                for q_s in self.quanta:
                    for seed in self.seeds:
                        cells.append(SweepCell.make("table1", {
                            "app": app,
                            "q_s": q_s,
                            "partners": list(self.apps),
                            "scale": self.scale,
                            "seed": seed,
                            "backend": self.backend,
                        }))
        return tuple(cells)

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """Schema-tagged plain-dict form (the on-disk spec layout)."""
        out: typing.Dict[str, typing.Any] = {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "seeds": list(self.seeds),
            "n_processors": self.n_processors,
            "backend": self.backend,
            "store_traces": self.store_traces,
        }
        if self.kind in ("mix", "opensys"):
            out["policies"] = list(self.policies)
        if self.kind == "mix":
            out["mixes"] = list(self.mixes)
        elif self.kind == "opensys":
            out["scenarios"] = list(self.scenarios)
            out["lite"] = self.lite
            out["utilization"] = self.utilization
        else:
            out["apps"] = list(self.apps)
            out["quanta"] = list(self.quanta)
            out["scale"] = self.scale
        return out


#: Fields accepted by the on-disk spec form (beyond schema/name/kind).
_SPEC_FIELDS = {
    "policies", "seeds", "n_processors", "backend", "store_traces",
    "mixes", "scenarios", "lite", "utilization", "apps", "quanta", "scale",
}


def spec_from_dict(
    data: typing.Mapping[str, typing.Any], source: str = "spec"
) -> SweepSpec:
    """Build a validated :class:`SweepSpec` from a parsed spec document.

    Raises:
        ValueError: naming ``source`` and the offending field, for every
            way a document can be wrong (unknown keys included, so a
            typoed axis name cannot silently produce an empty sweep).
    """
    if not isinstance(data, typing.Mapping):
        raise ValueError(f"{source}: spec document must be a table/object")
    schema = data.get("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        raise ValueError(
            f"{source}: unknown spec schema {schema!r}; "
            f"this loader understands {SPEC_SCHEMA!r}"
        )
    unknown = set(data) - _SPEC_FIELDS - {"schema", "name", "kind"}
    if unknown:
        raise ValueError(
            f"{source}: unknown spec field(s) {sorted(unknown)}; "
            f"accepted: {sorted(_SPEC_FIELDS)}"
        )
    kwargs: typing.Dict[str, typing.Any] = {}
    for field in ("policies", "mixes", "scenarios", "apps", "quanta", "seeds"):
        if field in data:
            value = data[field]
            if not isinstance(value, (list, tuple)):
                raise ValueError(f"{source}: {field} must be a list")
            kwargs[field] = tuple(value)
    for field in ("n_processors", "backend", "store_traces", "lite",
                  "utilization", "scale"):
        if field in data:
            kwargs[field] = data[field]
    try:
        return SweepSpec(
            name=str(data.get("name", "")),
            kind=str(data.get("kind", "")),
            **kwargs,
        )
    except (ValueError, TypeError) as exc:
        raise ValueError(f"{source}: {exc}") from exc


def load_spec(path: str) -> SweepSpec:
    """Load a sweep spec from a ``.toml`` or ``.json`` file.

    TOML needs Python 3.11+ (stdlib ``tomllib``); on older interpreters
    the error says so and points at the JSON form, which always works.

    Raises:
        ValueError: unreadable file, unparseable document, or any spec
            validation failure — always naming the path.
    """
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11
            raise ValueError(
                f"{path}: TOML specs need Python 3.11+ (stdlib tomllib); "
                "use the equivalent JSON spec instead"
            ) from exc
        try:
            with open(path, "rb") as fh:
                data = tomllib.load(fh)
        except OSError as exc:
            raise ValueError(f"cannot read sweep spec {path!r}: {exc}") from exc
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{path}: not valid TOML ({exc})") from exc
    else:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as exc:
            raise ValueError(f"cannot read sweep spec {path!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    return spec_from_dict(data, source=path)
