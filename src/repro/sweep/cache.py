"""Content-addressed result store for sweep cells.

Every cell's identity is ``sha256(schema_version, code_fingerprint,
canonical cell config, seed)`` — the seed rides inside the canonical
config, and the code fingerprint hashes every ``.py`` file of the
``repro`` package, so *any* source change (a tweaked cache model, a new
policy priority rule) invalidates every cached cell rather than serving
stale physics.  Results live under ``<root>/<key[:2]>/<key>/``:

* ``cell.json`` — provenance (schema, key, fingerprint, the cell's kind
  and config), written first;
* ``trace.rct`` — optional columnar trace of the cell's run;
* ``result.json`` — the schema-tagged result payload, written *last*
  with an atomic rename: its presence is the commit marker, so a crash
  at any point leaves either a complete entry or no entry, never a
  half-entry that a resume would trust.

Payloads are plain JSON dicts; because Python's ``repr`` float
serialization round-trips exactly, a cache hit reconstructs the same
numbers bit-for-bit and downstream reports are byte-identical to a
fresh run.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import shutil
import typing

import repro
from repro import ioutil
from repro.sweep.spec import SweepCell, canonical_json

#: Version of the cache-key recipe and payload layout.  Bump on any
#: change to what a key covers or what a payload contains; old entries
#: then simply stop matching.
CACHE_SCHEMA = "repro.sweep.cache/1"

#: Schema tag carried inside every persisted result payload.
RESULT_SCHEMA = "repro.sweep.result/1"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_RESULT_FILE = "result.json"
_CELL_FILE = "cell.json"
_TRACE_FILE = "trace.rct"


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """sha256 over every ``.py`` file of the installed ``repro`` package.

    Files are hashed as ``(posix relpath, sha256(bytes))`` pairs in
    sorted-path order, so the fingerprint is stable across platforms and
    directory-walk order but changes whenever any source byte does.
    Cached per process — the executor and its workers each pay the walk
    once.
    """
    root = os.path.dirname(os.path.abspath(repro.__file__))
    entries: typing.List[typing.Tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, "rb") as fh:
                digest = hashlib.sha256(fh.read()).hexdigest()
            entries.append((rel, digest))
    summary = hashlib.sha256()
    for rel, digest in entries:
        summary.update(rel.encode("utf-8"))
        summary.update(b"\x00")
        summary.update(digest.encode("ascii"))
        summary.update(b"\n")
    return summary.hexdigest()


def cell_key(cell: SweepCell, fingerprint: typing.Optional[str] = None) -> str:
    """The cell's content address (64 hex chars).

    Hashes the canonical JSON of ``{schema, code_fingerprint, kind,
    config, seed}``; the seed is already inside the config but is lifted
    out explicitly too, so the key recipe visibly covers it even if a
    future cell kind moves seeds elsewhere.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint()
    material = canonical_json({
        "schema": CACHE_SCHEMA,
        "code_fingerprint": fingerprint,
        "kind": cell.kind,
        "config": cell.config,
        "seed": cell.seed,
    })
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed, content-addressed store of cell results.

    Safe for concurrent writers of the *same* key: both compute the
    identical payload (keys are content addresses over deterministic
    simulations) and the atomic rename makes the last writer win with a
    complete file either way.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root

    # -- layout -------------------------------------------------------- #

    def cell_dir(self, key: str) -> str:
        """``<root>/<key[:2]>/<key>`` — two-level fanout keeps any single
        directory small on large sweeps."""
        return os.path.join(self.root, key[:2], key)

    def trace_path(self, key: str) -> str:
        return os.path.join(self.cell_dir(key), _TRACE_FILE)

    # -- read side ----------------------------------------------------- #

    def load(self, key: str) -> typing.Optional[typing.Dict[str, typing.Any]]:
        """The cached payload for ``key``, or ``None`` on a miss.

        ``result.json`` is only ever published by an atomic rename, so a
        readable-but-malformed file means external damage (disk fault,
        manual edit); the entry is evicted and treated as a miss so the
        sweep recomputes instead of crashing or trusting garbage.
        """
        path = os.path.join(self.cell_dir(key), _RESULT_FILE)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self.evict(key)
            return None
        if not isinstance(payload, dict) or payload.get("schema") != RESULT_SCHEMA:
            self.evict(key)
            return None
        return payload

    def has(self, key: str) -> bool:
        return os.path.exists(os.path.join(self.cell_dir(key), _RESULT_FILE))

    # -- write side ---------------------------------------------------- #

    def store(
        self,
        cell: SweepCell,
        key: str,
        payload: typing.Mapping[str, typing.Any],
        fingerprint: typing.Optional[str] = None,
    ) -> None:
        """Persist a computed cell: provenance first, result last.

        Each file is written atomically, and ``result.json`` goes last:
        until it lands, :meth:`load`/:meth:`has` report a miss, so an
        interrupted store is indistinguishable from never having run.
        """
        if payload.get("schema") != RESULT_SCHEMA:
            raise ValueError(
                f"refusing to cache a payload without schema {RESULT_SCHEMA!r}"
            )
        cell_dir = self.cell_dir(key)
        os.makedirs(cell_dir, exist_ok=True)
        provenance = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "code_fingerprint": fingerprint or code_fingerprint(),
            "kind": cell.kind,
            "config": cell.config,
        }
        ioutil.atomic_write_text(
            os.path.join(cell_dir, _CELL_FILE),
            json.dumps(provenance, sort_keys=True, indent=2) + "\n",
        )
        ioutil.atomic_write_text(
            os.path.join(cell_dir, _RESULT_FILE),
            json.dumps(payload, sort_keys=True) + "\n",
        )

    def evict(self, key: str) -> bool:
        """Drop one entry (used for damaged entries and ``sweep clean``)."""
        cell_dir = self.cell_dir(key)
        if not os.path.isdir(cell_dir):
            return False
        shutil.rmtree(cell_dir, ignore_errors=True)
        # Prune the fanout directory if this was its last entry.
        parent = os.path.dirname(cell_dir)
        try:
            os.rmdir(parent)
        except OSError:
            pass
        return True
