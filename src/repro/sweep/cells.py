"""Running one sweep cell, and (de)serializing its result payload.

The executor hands workers nothing but a :class:`~repro.sweep.spec.SweepCell`
(kind + canonical config); :func:`run_cell` dispatches it to the
existing experiment drivers — :func:`repro.measure.runner.run_mix`,
:func:`repro.workloads.opensys.scenario.run_scenario`, or
:class:`repro.measure.penalty.PenaltyExperiment` — and packs the outcome
into a plain-JSON payload the cache can persist.  Each driver is
deterministic in the cell's config alone (every RNG stream is re-derived
from the seed inside the run), so a cell computes the same payload
whichever worker, shard, or session runs it.

The ``*_from_dict`` inverses rebuild the original result dataclasses
bit-for-bit (JSON floats round-trip exactly), and the ``*_comparison``
assemblers regroup a sweep's payloads into the exact aggregate objects
the report renderers already consume — byte-identical to what the
pre-sweep per-figure loops produced.
"""

from __future__ import annotations

import typing

from repro.apps import APPLICATIONS
from repro.core.system import JobMetrics, SystemResult
from repro.measure.penalty import PenaltyExperiment, PenaltyResult, PenaltyTable, RegimeRun
from repro.measure.runner import (
    MixComparison,
    Replication,
    comparison_from_replications,
    run_mix,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import SpanProfiler
from repro.sweep.cache import RESULT_SCHEMA
from repro.sweep.spec import POLICIES_BY_NAME, SweepCell, SweepSpec
from repro.workloads.opensys.scenario import (
    CellSummary,
    MatrixComparison,
    OpenSystemResult,
    built_in_scenarios,
    run_scenario,
)

#: cell -> result payload, as returned by the executor.
PayloadMap = typing.Mapping[SweepCell, typing.Dict[str, typing.Any]]


# ---------------------------------------------------------------------- #
# result <-> plain dict


def job_metrics_to_dict(m: JobMetrics) -> typing.Dict[str, typing.Any]:
    return {
        "name": m.name,
        "response_time": m.response_time,
        "work": m.work,
        "waste": m.waste,
        "n_reallocations": m.n_reallocations,
        "pct_affinity": m.pct_affinity,
        "cache_penalty_total": m.cache_penalty_total,
        "switch_overhead_total": m.switch_overhead_total,
        "average_allocation": m.average_allocation,
    }


def job_metrics_from_dict(data: typing.Mapping[str, typing.Any]) -> JobMetrics:
    return JobMetrics(**data)


def system_result_to_dict(result: SystemResult) -> typing.Dict[str, typing.Any]:
    """Field-complete, insertion-order-preserving plain form."""
    return {
        "policy": result.policy,
        "n_processors": result.n_processors,
        "seed": result.seed,
        "makespan": result.makespan,
        "jobs": {
            name: job_metrics_to_dict(m) for name, m in result.jobs.items()
        },
        "cancelled": dict(result.cancelled),
    }


def system_result_from_dict(
    data: typing.Mapping[str, typing.Any]
) -> SystemResult:
    return SystemResult(
        policy=data["policy"],
        n_processors=data["n_processors"],
        seed=data["seed"],
        makespan=data["makespan"],
        jobs={
            name: job_metrics_from_dict(m) for name, m in data["jobs"].items()
        },
        cancelled=dict(data["cancelled"]),
    )


def opensys_result_to_dict(
    result: OpenSystemResult,
) -> typing.Dict[str, typing.Any]:
    return {
        "scenario": result.scenario,
        "policy": result.policy,
        "seed": result.seed,
        "n_processors": result.n_processors,
        "makespan": result.makespan,
        "n_jobs": result.n_jobs,
        "n_completed": result.n_completed,
        "n_cancelled": result.n_cancelled,
        "response_times": list(result.response_times),
        "total_work": result.total_work,
        "total_reallocations": result.total_reallocations,
        "n_failures": result.n_failures,
        "system": system_result_to_dict(result.system),
    }


def opensys_result_from_dict(
    data: typing.Mapping[str, typing.Any]
) -> OpenSystemResult:
    return OpenSystemResult(
        scenario=data["scenario"],
        policy=data["policy"],
        seed=data["seed"],
        n_processors=data["n_processors"],
        makespan=data["makespan"],
        n_jobs=data["n_jobs"],
        n_completed=data["n_completed"],
        n_cancelled=data["n_cancelled"],
        response_times=tuple(data["response_times"]),
        total_work=data["total_work"],
        total_reallocations=data["total_reallocations"],
        n_failures=data["n_failures"],
        system=system_result_from_dict(data["system"]),
    )


def _regime_to_dict(run: RegimeRun) -> typing.Dict[str, typing.Any]:
    return {
        "response_time": run.response_time,
        "n_switches": run.n_switches,
        "hit_rate": run.hit_rate,
    }


def penalty_result_to_dict(result: PenaltyResult) -> typing.Dict[str, typing.Any]:
    return {
        "app": result.app,
        "q_s": result.q_s,
        "stationary": _regime_to_dict(result.stationary),
        "migrating": _regime_to_dict(result.migrating),
        "multiprog": {
            name: _regime_to_dict(run)
            for name, run in result.multiprog.items()
        },
    }


def penalty_result_from_dict(
    data: typing.Mapping[str, typing.Any]
) -> PenaltyResult:
    return PenaltyResult(
        app=data["app"],
        q_s=data["q_s"],
        stationary=RegimeRun(**data["stationary"]),
        migrating=RegimeRun(**data["migrating"]),
        multiprog={
            name: RegimeRun(**run) for name, run in data["multiprog"].items()
        },
    )


# ---------------------------------------------------------------------- #
# running one cell


def run_cell(
    cell: SweepCell,
    collect_metrics: bool = False,
    collect_profile: bool = False,
    tracer: typing.Optional[object] = None,
    heartbeat: typing.Optional[object] = None,
) -> typing.Dict[str, typing.Any]:
    """Compute one cell from scratch; returns its schema-tagged payload.

    Deterministic in the cell config: re-running any cell anywhere
    yields an identical payload (the cache-correctness contract).
    ``metrics`` snapshots ride inside the payload and are cacheable
    (order-stable merges reassemble the aggregate views); a ``profile``
    snapshot is wall-clock measurement and therefore *transient* — the
    executor strips it before caching (see :func:`strip_transient`).
    """
    config = cell.config
    registry = MetricsRegistry() if collect_metrics else None
    profiler = SpanProfiler() if collect_profile else None
    if cell.kind == "mix":
        result = run_mix(
            config["mix"],
            POLICIES_BY_NAME[config["policy"]],
            seed=config["seed"],
            n_processors=config["n_processors"],
            tracer=tracer,
            metrics=registry,
            profiler=profiler,
            heartbeat=heartbeat,
        )
        data: typing.Dict[str, typing.Any] = {
            "system": system_result_to_dict(result)
        }
    elif cell.kind == "opensys":
        scenario = built_in_scenarios(
            lite=config["lite"],
            n_processors=config["n_processors"],
            utilization=config["utilization"],
        )[config["scenario"]]
        result = run_scenario(
            scenario,
            POLICIES_BY_NAME[config["policy"]],
            seed=config["seed"],
            n_processors=config["n_processors"],
            tracer=tracer,
            metrics=registry,
            profiler=profiler,
            heartbeat=heartbeat,
        )
        data = {"opensys": opensys_result_to_dict(result)}
    elif cell.kind == "table1":
        experiment = PenaltyExperiment(
            scale=config["scale"],
            seed=config["seed"],
            tracer=tracer,
            metrics=registry,
            profiler=profiler,
            backend=config["backend"],
        )
        result = experiment.measure(
            APPLICATIONS[config["app"]],
            config["q_s"],
            partners=[APPLICATIONS[name] for name in config["partners"]],
        )
        data = {"penalty": penalty_result_to_dict(result)}
    else:
        raise ValueError(f"unknown cell kind {cell.kind!r}")
    payload: typing.Dict[str, typing.Any] = {
        "schema": RESULT_SCHEMA,
        "kind": cell.kind,
        "cell": config,
        "data": data,
    }
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if profiler is not None:
        payload["profile"] = profiler.snapshot()
    return payload


def strip_transient(
    payload: typing.Mapping[str, typing.Any]
) -> typing.Dict[str, typing.Any]:
    """The cacheable subset of a payload: everything but wall-clock data.

    Profiles time the *simulator*, not the simulated system — caching
    one would replay this machine's timings as if they were results.
    """
    return {k: v for k, v in payload.items() if k != "profile"}


# ---------------------------------------------------------------------- #
# payloads -> the aggregate report objects


def mix_comparison(
    spec: SweepSpec, payloads: PayloadMap, mix_id: int
) -> MixComparison:
    """Assemble one mix's :class:`MixComparison` from sweep payloads.

    Rebuilds the per-seed :class:`Replication` objects (all of the
    spec's policies on the shared seed — the common-random-numbers
    pairing survives because every driver derives its streams from the
    seed alone) and summarizes through the exact code path
    ``compare_policies`` uses, so the output is byte-identical.
    """
    replications = []
    for seed in spec.seeds:
        jobs: typing.Dict[str, typing.Dict[str, JobMetrics]] = {}
        metrics: typing.Dict[str, dict] = {}
        profile: typing.Dict[str, dict] = {}
        for policy in spec.policies:
            cell = SweepCell.make("mix", {
                "mix": mix_id,
                "policy": policy,
                "seed": seed,
                "n_processors": spec.n_processors,
            })
            payload = payloads[cell]
            system = payload["data"]["system"]
            jobs[policy] = {
                name: job_metrics_from_dict(m)
                for name, m in system["jobs"].items()
            }
            if payload.get("metrics") is not None:
                metrics[policy] = payload["metrics"]
            if payload.get("profile") is not None:
                profile[policy] = payload["profile"]
        replications.append(
            Replication(jobs=jobs, metrics=metrics, profile=profile)
        )
    return comparison_from_replications(mix_id, replications)


def matrix_comparison(
    spec: SweepSpec, payloads: PayloadMap
) -> MatrixComparison:
    """Assemble the open-system :class:`MatrixComparison` from payloads.

    Iterates seed-major then (scenario, policy) — the same commit order
    ``run_matrix`` uses — so result tuples, first-seen scenario order,
    and metric merge order (and therefore every downstream byte) match
    the direct runner.
    """
    results: typing.Dict[
        typing.Tuple[str, str], typing.List[OpenSystemResult]
    ] = {}
    merged: typing.Dict[typing.Tuple[str, str], MetricsRegistry] = {}
    for seed in spec.seeds:
        for scenario in spec.scenarios:
            for policy in spec.policies:
                cell = SweepCell.make("opensys", {
                    "scenario": scenario,
                    "policy": policy,
                    "seed": seed,
                    "n_processors": spec.n_processors,
                    "lite": spec.lite,
                    "utilization": spec.utilization,
                })
                payload = payloads[cell]
                key = (scenario, policy)
                results.setdefault(key, []).append(
                    opensys_result_from_dict(payload["data"]["opensys"])
                )
                snapshot = payload.get("metrics")
                if snapshot is not None:
                    merged.setdefault(key, MetricsRegistry()).merge_snapshot(
                        snapshot
                    )
    cells = {
        key: CellSummary.from_results(cell_results)
        for key, cell_results in results.items()
    }
    return MatrixComparison(
        seeds=spec.seeds,
        scenarios=spec.scenarios,
        policies=spec.policies,
        results={key: tuple(value) for key, value in results.items()},
        cells=cells,
        metrics={key: reg.snapshot() for key, reg in merged.items()},
    )


def mean_response_table(
    spec: SweepSpec, payloads: PayloadMap
) -> typing.Dict[int, typing.Dict[str, float]]:
    """Table 4's numbers: mix -> policy -> seed-averaged mean response time.

    Accumulates per-seed job means in seed order and divides once, the
    exact float-operation sequence the pre-sweep loop performed.
    """
    out: typing.Dict[int, typing.Dict[str, float]] = {}
    for mix_id in spec.mixes:
        out[mix_id] = {}
        for policy in spec.policies:
            total = 0.0
            for seed in spec.seeds:
                cell = SweepCell.make("mix", {
                    "mix": mix_id,
                    "policy": policy,
                    "seed": seed,
                    "n_processors": spec.n_processors,
                })
                jobs = payloads[cell]["data"]["system"]["jobs"]
                total += sum(
                    j["response_time"] for j in jobs.values()
                ) / len(jobs)
            out[mix_id][policy] = total / len(spec.seeds)
    return out


def penalty_table(
    spec: SweepSpec, payloads: PayloadMap, seed: typing.Optional[int] = None
) -> PenaltyTable:
    """Assemble Table 1 from sweep payloads (one seed's worth of cells)."""
    if seed is None:
        if len(spec.seeds) != 1:
            raise ValueError(
                f"spec has seeds {list(spec.seeds)}; pass the seed to tabulate"
            )
        seed = spec.seeds[0]
    results: typing.Dict[typing.Tuple[str, float], PenaltyResult] = {}
    for app in spec.apps:
        for q_s in spec.quanta:
            cell = SweepCell.make("table1", {
                "app": app,
                "q_s": q_s,
                "partners": list(spec.apps),
                "scale": spec.scale,
                "seed": seed,
                "backend": spec.backend,
            })
            results[(app, q_s)] = penalty_result_from_dict(
                payloads[cell]["data"]["penalty"]
            )
    return PenaltyTable(results=results, partner_names=spec.apps)


def merged_metrics(
    spec: SweepSpec, payloads: PayloadMap
) -> typing.Optional[typing.Dict[str, typing.Any]]:
    """All cells' metric snapshots folded in expansion order, or ``None``.

    Expansion order is the same nesting the pre-sweep accumulation loops
    used, and the registry's merges are order-stable, so this reproduces
    a single shared registry's view of the whole sweep.
    """
    snapshots = [
        payloads[cell]["metrics"]
        for cell in spec.expand()
        if payloads.get(cell, {}).get("metrics") is not None
    ]
    if not snapshots:
        return None
    return MetricsRegistry.merged(snapshots)


def merged_profile(
    spec: SweepSpec, payloads: PayloadMap
) -> typing.Optional[typing.Dict[str, typing.Any]]:
    """All cells' profile snapshots folded in expansion order, or ``None``."""
    snapshots = [
        payloads[cell]["profile"]
        for cell in spec.expand()
        if payloads.get(cell, {}).get("profile") is not None
    ]
    if not snapshots:
        return None
    return SpanProfiler.merged(snapshots)
