"""Windowed interval series over a scheduling trace.

Figures 5-6 of the paper are end-of-run aggregates; the interval series
shows the same quantities *over time*, which is where transient effects
(arrival bursts, reallocation storms after a departure) become visible.
One pass over the :func:`repro.obs.analysis.attribution.sweep` slices
and the point-event records yields, per window:

* **utilization** — busy CPU-seconds / (window span x P); a processor is
  busy while a worker occupies it (switch, reload, or compute);
* **miss_rate** — cache misses / accesses from ``cache_batch`` records;
* **affinity_hit_ratio** — affine reallocations / reallocations, the
  fraction of non-cheap dispatches that landed on a processor whose
  cache still held the worker's footprint (cheap same-processor resumes
  are trivially affine and excluded);
* **realloc_rate** — non-cheap dispatches per second;
* **fragmentation** — distinct owning jobs / owned processors,
  time-weighted over the owned portion of the window (1.0 = every owned
  processor belongs to a different job, 1/k = jobs own k-processor
  blocks; 0.0 while nothing is owned).

Raw counts ship alongside every ratio so consumers can re-weight or
merge windows without re-reading the trace.  Window accounting uses
exact :class:`fractions.Fraction` arithmetic internally; the exported
rows are floats.
"""

from __future__ import annotations

import dataclasses
import typing
from fractions import Fraction

from repro.obs.analysis.attribution import sweep
from repro.obs.records import CacheBatch, Dispatch, RunConfig, RunEnd, TraceRecord

#: Interval-series export schema identifier.
INTERVALS_SCHEMA = "repro.analysis.intervals/1"

#: Column order for window rows (JSON keys and CSV columns).
WINDOW_FIELDS: typing.Tuple[str, ...] = (
    "index",
    "start",
    "end",
    "utilization",
    "accesses",
    "misses",
    "miss_rate",
    "dispatches",
    "reallocations",
    "affine_reallocations",
    "affinity_hit_ratio",
    "realloc_rate",
    "fragmentation",
)


@dataclasses.dataclass(frozen=True)
class IntervalSeries:
    """The windowed series for one traced run."""

    policy: str
    seed: int
    n_processors: int
    window_s: float
    t0: float
    makespan: float
    windows: typing.Tuple[typing.Dict[str, float], ...]

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """The schema-tagged plain-dict form the exporters serialize."""
        return {
            "schema": INTERVALS_SCHEMA,
            "policy": self.policy,
            "seed": self.seed,
            "n_processors": self.n_processors,
            "window_s": self.window_s,
            "t0": self.t0,
            "makespan": self.makespan,
            "windows": [dict(w) for w in self.windows],
        }


class _Window:
    __slots__ = (
        "start", "end", "busy", "frag_weighted", "owned_time",
        "accesses", "misses", "dispatches", "reallocations", "affine",
    )

    def __init__(self, start: Fraction, end: Fraction) -> None:
        self.start = start
        self.end = end
        self.busy = Fraction(0)
        self.frag_weighted = Fraction(0)
        self.owned_time = Fraction(0)
        self.accesses = 0
        self.misses = 0
        self.dispatches = 0
        self.reallocations = 0
        self.affine = 0


def interval_series(
    records: typing.Sequence[TraceRecord], window_s: float
) -> IntervalSeries:
    """Compute the windowed series for a complete trace.

    Args:
        records: a full trace (``run_config`` first, ``run_end`` last).
        window_s: window width in virtual seconds; the final window is
            clamped to the makespan and may be shorter.

    Raises:
        ValueError: on a non-positive window or missing trace framing.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s!r}")
    records = list(records)
    config = records[0] if records else None
    if not isinstance(config, RunConfig):
        raise ValueError("interval series needs a trace starting with run_config")
    if not isinstance(records[-1], RunEnd):
        raise ValueError("interval series needs a trace ending with run_end")

    t0 = Fraction(config.time)
    end = Fraction(records[-1].time)
    width = Fraction(window_s)
    windows: typing.List[_Window] = []
    cursor = t0
    while cursor < end:
        upper = min(cursor + width, end)
        windows.append(_Window(cursor, upper))
        cursor = upper

    def window_index(time: Fraction) -> int:
        index = int((time - t0) / width)
        return min(index, len(windows) - 1)

    # Point events: cache batches and dispatches land in one window.
    for record in records:
        if not windows:
            break
        if isinstance(record, CacheBatch):
            w = windows[window_index(Fraction(record.time))]
            w.accesses += record.n
            w.misses += record.n - record.hits
        elif isinstance(record, Dispatch):
            w = windows[window_index(Fraction(record.time))]
            w.dispatches += 1
            if not record.cheap:
                w.reallocations += 1
                if record.affine:
                    w.affine += 1

    # Interval state: intersect every constant-state slice with windows.
    for piece in sweep(records):
        if not windows:
            break
        busy_cpus = len(piece.running)
        owned = len(piece.owners)
        distinct = len(set(piece.owners.values())) if owned else 0
        index = window_index(piece.start)
        start = piece.start
        while start < piece.end:
            w = windows[index]
            upper = min(piece.end, w.end)
            overlap = upper - start
            w.busy += overlap * busy_cpus
            if owned:
                w.owned_time += overlap
                w.frag_weighted += overlap * Fraction(distinct, owned)
            start = upper
            index += 1

    rows: typing.List[typing.Dict[str, float]] = []
    for i, w in enumerate(windows):
        span = w.end - w.start
        rows.append(
            {
                "index": i,
                "start": float(w.start),
                "end": float(w.end),
                "utilization": float(w.busy / (span * config.n_processors)),
                "accesses": w.accesses,
                "misses": w.misses,
                "miss_rate": (w.misses / w.accesses) if w.accesses else 0.0,
                "dispatches": w.dispatches,
                "reallocations": w.reallocations,
                "affine_reallocations": w.affine,
                "affinity_hit_ratio": (
                    w.affine / w.reallocations if w.reallocations else 0.0
                ),
                "realloc_rate": float(Fraction(w.reallocations) / span),
                "fragmentation": (
                    float(w.frag_weighted / w.owned_time) if w.owned_time else 0.0
                ),
            }
        )
    return IntervalSeries(
        policy=config.policy,
        seed=config.seed,
        n_processors=config.n_processors,
        window_s=float(width),
        t0=float(t0),
        makespan=float(end),
        windows=tuple(rows),
    )
