"""Trace diffing: why did two runs of the same mix behave differently?

``repro diff`` answers the paper's comparative questions ("why is
Dyn-Aff faster than Equipartition on this mix?") mechanically: given two
traces of the same job mix — different policies, seeds, or worker counts
— it reports

* per-job response-time deltas, *attributed to buckets* via
  :func:`repro.obs.analysis.attribution.attribute_time` (so a 30 s gap
  shows up as, say, -25 s processor-wait and -5 s reload penalty);
* the first divergent record overall and the first divergent *policy
  decision*, with the credit evidence both sides weighed at that point —
  the earliest mechanical cause of the divergence;
* per-rule decision-count deltas (how often each Section 5 rule fired).

Two bit-identical traces (e.g. the serial vs ``workers=2`` differential)
produce ``identical=True``, no divergence, and all-zero deltas — the
diff is itself a determinism check.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.obs.analysis.attribution import BUCKETS, TimeAttribution, attribute_time
from repro.obs.records import PolicyDecision, TraceRecord, record_to_dict

#: Trace-diff export schema identifier.
DIFF_SCHEMA = "repro.analysis.diff/1"


@dataclasses.dataclass(frozen=True)
class Divergence:
    """The first position where the two record streams disagree."""

    index: int
    a: typing.Optional[typing.Dict[str, typing.Any]]
    b: typing.Optional[typing.Dict[str, typing.Any]]

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        return {"index": self.index, "a": self.a, "b": self.b}


@dataclasses.dataclass(frozen=True)
class TraceDiff:
    """The aligned comparison of two traces (B relative to A)."""

    label_a: str
    label_b: str
    identical: bool
    #: job -> {"response_time_delta": float, "buckets": {bucket: delta}}
    job_deltas: typing.Dict[str, typing.Dict[str, typing.Any]]
    jobs_only_a: typing.Tuple[str, ...]
    jobs_only_b: typing.Tuple[str, ...]
    mean_response_delta: float
    makespan_delta: float
    #: machine-wide CPU-second totals per bucket (compute is nearly
    #: policy-invariant, so the interesting deltas land in reload /
    #: switch / wait / idle)
    totals_a: typing.Dict[str, float]
    totals_b: typing.Dict[str, float]
    first_divergence: typing.Optional[Divergence]
    first_divergent_decision: typing.Optional[Divergence]
    #: credit evidence at the first divergent decision: job -> (a, b)
    credit_differences: typing.Dict[
        str, typing.Tuple[typing.Optional[float], typing.Optional[float]]
    ]
    decision_rule_counts_a: typing.Dict[str, int]
    decision_rule_counts_b: typing.Dict[str, int]

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """The schema-tagged plain-dict form the exporters serialize."""
        return {
            "schema": DIFF_SCHEMA,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "identical": self.identical,
            "job_deltas": {j: dict(d) for j, d in self.job_deltas.items()},
            "jobs_only_a": list(self.jobs_only_a),
            "jobs_only_b": list(self.jobs_only_b),
            "mean_response_delta": self.mean_response_delta,
            "makespan_delta": self.makespan_delta,
            "totals_a": dict(self.totals_a),
            "totals_b": dict(self.totals_b),
            "first_divergence": (
                self.first_divergence.to_dict() if self.first_divergence else None
            ),
            "first_divergent_decision": (
                self.first_divergent_decision.to_dict()
                if self.first_divergent_decision
                else None
            ),
            "credit_differences": {
                job: list(pair) for job, pair in self.credit_differences.items()
            },
            "decision_rule_counts_a": dict(self.decision_rule_counts_a),
            "decision_rule_counts_b": dict(self.decision_rule_counts_b),
        }


def _first_divergence(
    seq_a: typing.Sequence[TraceRecord], seq_b: typing.Sequence[TraceRecord]
) -> typing.Optional[Divergence]:
    for i in range(max(len(seq_a), len(seq_b))):
        dict_a = record_to_dict(seq_a[i]) if i < len(seq_a) else None
        dict_b = record_to_dict(seq_b[i]) if i < len(seq_b) else None
        if dict_a != dict_b:
            return Divergence(index=i, a=dict_a, b=dict_b)
    return None


def _rule_counts(records: typing.Sequence[TraceRecord]) -> typing.Dict[str, int]:
    counts: typing.Dict[str, int] = {}
    for record in records:
        if isinstance(record, PolicyDecision):
            counts[record.rule] = counts.get(record.rule, 0) + 1
    return counts


def diff_traces(
    trace_a: typing.Sequence[TraceRecord],
    trace_b: typing.Sequence[TraceRecord],
    label_a: str = "a",
    label_b: str = "b",
) -> TraceDiff:
    """Align two traces of the same mix and explain their differences.

    Deltas are B minus A throughout; a negative ``response_time_delta``
    means the job finished *faster* under B.  Bucket deltas use the
    exact per-job attribution, so per job they sum exactly to the
    response-time delta.

    Raises:
        ValueError: if either trace lacks run_config/run_end framing
            (propagated from :func:`attribute_time`).
    """
    trace_a = list(trace_a)
    trace_b = list(trace_b)
    attr_a = attribute_time(trace_a)
    attr_b = attribute_time(trace_b)

    job_deltas: typing.Dict[str, typing.Dict[str, typing.Any]] = {}
    common = sorted(set(attr_a.response_times) & set(attr_b.response_times))
    deltas: typing.List[float] = []
    for job in common:
        delta = float(attr_b.response_times[job] - attr_a.response_times[job])
        deltas.append(delta)
        job_deltas[job] = {
            "response_time_delta": delta,
            "buckets": {
                bucket: float(attr_b.per_job[job][bucket] - attr_a.per_job[job][bucket])
                for bucket in BUCKETS
            },
        }

    decisions_a = [r for r in trace_a if isinstance(r, PolicyDecision)]
    decisions_b = [r for r in trace_b if isinstance(r, PolicyDecision)]
    divergence = _first_divergence(trace_a, trace_b)
    decision_divergence = _first_divergence(decisions_a, decisions_b)

    credit_differences: typing.Dict[
        str, typing.Tuple[typing.Optional[float], typing.Optional[float]]
    ] = {}
    if decision_divergence is not None:
        credits_a = (decision_divergence.a or {}).get("credits") or {}
        credits_b = (decision_divergence.b or {}).get("credits") or {}
        for job in sorted(set(credits_a) | set(credits_b)):
            pair = (credits_a.get(job), credits_b.get(job))
            if pair[0] != pair[1]:
                credit_differences[job] = pair

    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        identical=divergence is None and len(trace_a) == len(trace_b),
        job_deltas=job_deltas,
        jobs_only_a=tuple(sorted(set(attr_a.response_times) - set(attr_b.response_times))),
        jobs_only_b=tuple(sorted(set(attr_b.response_times) - set(attr_a.response_times))),
        mean_response_delta=(sum(deltas) / len(deltas)) if deltas else 0.0,
        makespan_delta=float(
            (attr_b.makespan - attr_b.t0) - (attr_a.makespan - attr_a.t0)
        ),
        totals_a=attr_a.totals(),
        totals_b=attr_b.totals(),
        first_divergence=divergence,
        first_divergent_decision=decision_divergence,
        credit_differences=credit_differences,
        decision_rule_counts_a=_rule_counts(trace_a),
        decision_rule_counts_b=_rule_counts(trace_b),
    )


def attribution_pair(
    trace_a: typing.Sequence[TraceRecord], trace_b: typing.Sequence[TraceRecord]
) -> typing.Tuple[TimeAttribution, TimeAttribution]:
    """Both attributions, for callers that want totals alongside the diff."""
    return attribute_time(trace_a), attribute_time(trace_b)
