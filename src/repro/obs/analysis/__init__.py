"""Trace analytics: turning the PR 3 record stream into explanations.

Four consumers of the trace, one shared replay substrate
(:func:`~repro.obs.analysis.attribution.sweep`):

* :mod:`~repro.obs.analysis.attribution` — exact time attribution:
  every simulated second charged to compute / reload / switch / wait /
  idle, per job and per CPU, with rational-arithmetic conservation laws;
* :mod:`~repro.obs.analysis.intervals` — windowed series of
  utilization, miss rate, affinity-hit ratio, reallocation rate, and
  allocation fragmentation;
* :mod:`~repro.obs.analysis.diff` — aligned two-trace comparison with
  bucket-attributed response-time deltas and the first divergent
  decision;
* :mod:`repro.obs.profiling` — the simulator's own wall-clock profile
  (lives one level up because it instruments *running* code, while this
  package only reads finished traces).
"""

from repro.obs.analysis.attribution import (
    BUCKETS,
    CPU_STATES,
    Slice,
    TimeAttribution,
    attribute_time,
    cpu_state_segments,
    sweep,
)
from repro.obs.analysis.diff import DIFF_SCHEMA, Divergence, TraceDiff, diff_traces
from repro.obs.analysis.intervals import (
    INTERVALS_SCHEMA,
    WINDOW_FIELDS,
    IntervalSeries,
    interval_series,
)

__all__ = [
    "BUCKETS",
    "CPU_STATES",
    "DIFF_SCHEMA",
    "Divergence",
    "INTERVALS_SCHEMA",
    "IntervalSeries",
    "Slice",
    "TimeAttribution",
    "TraceDiff",
    "WINDOW_FIELDS",
    "attribute_time",
    "cpu_state_segments",
    "diff_traces",
    "interval_series",
    "sweep",
]
