"""Time attribution: where every simulated second went.

The paper's central explanation (Sections 5-6) is a *decomposition*:
policies differ because time shifts between useful computation, cache
reload penalty, context-switch overhead, and waiting for a processor.
This module replays a PR 3 trace once and charges every simulated second
to exactly one bucket, in two views:

* **per CPU** (CPU-seconds): at every instant each processor is in
  exactly one state — executing a worker's context-switch path
  (``switch``), its cache reload (``reload``), its useful service
  (``compute``), held idle by its owning job or unallocated (``idle``).
  The per-CPU buckets tile ``[t0, makespan]``, so they sum to
  ``makespan x P`` exactly.
* **per job** (wall-clock seconds): at every instant of a job's
  residency the second is split equally across its running workers and
  charged to their phases; with no worker running it is ``idle`` if the
  job holds processors it cannot use (no runnable thread) and ``wait``
  (processor-wait) if it holds none.  The per-job buckets sum to the
  job's response time exactly.

"Exactly" is literal: all accounting is done in :class:`fractions.Fraction`
arithmetic over the trace's (exactly representable) float timestamps, so
:meth:`TimeAttribution.conservation_errors` checks *equality*, not
closeness — the same discipline as :mod:`repro.obs.replay`'s exact
aggregate reconstruction.  Floats only appear at the reporting boundary.
"""

from __future__ import annotations

import dataclasses
import typing
from fractions import Fraction

from repro.obs.records import (
    AllocationChange,
    Dispatch,
    JobArrival,
    JobDeparture,
    RunConfig,
    RunEnd,
    TraceRecord,
    Undispatch,
)

#: The canonical bucket names, in report order.
BUCKETS: typing.Tuple[str, ...] = ("compute", "reload", "switch", "wait", "idle")

#: CPU states produced by the sweep (``free``/``held`` both report as
#: ``idle`` in the bucket view but stay distinct for the timeline).
CPU_STATES: typing.Tuple[str, ...] = ("free", "held", "switch", "reload", "compute")

_PHASES = ("switch", "reload", "compute")


@dataclasses.dataclass(frozen=True)
class Slice:
    """One elementary interval during which no simulator state changed.

    ``running`` maps cpu -> (job, worker, phase) for busy processors;
    ``owners`` maps cpu -> job for every *owned* processor (busy or held
    idle); ``alive`` is the set of jobs resident in the system.
    """

    start: Fraction
    end: Fraction
    running: typing.Mapping[int, typing.Tuple[str, int, str]]
    owners: typing.Mapping[int, str]
    alive: typing.FrozenSet[str]

    @property
    def duration(self) -> Fraction:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class TimeAttribution:
    """The full two-view decomposition of one traced run."""

    policy: str
    seed: int
    n_processors: int
    t0: Fraction
    makespan: Fraction
    #: job -> bucket -> exact wall-clock seconds (sums to response time)
    per_job: typing.Dict[str, typing.Dict[str, Fraction]]
    #: cpu -> bucket -> exact CPU-seconds (sums to makespan - t0)
    per_cpu: typing.Dict[int, typing.Dict[str, Fraction]]
    #: job -> exact response time (departure - arrival, as Fractions)
    response_times: typing.Dict[str, Fraction]

    def job_buckets(self, job: str) -> typing.Dict[str, float]:
        """One job's buckets as floats, in :data:`BUCKETS` order."""
        return {b: float(self.per_job[job][b]) for b in BUCKETS}

    def cpu_buckets(self, cpu: int) -> typing.Dict[str, float]:
        """One CPU's buckets as floats, in :data:`BUCKETS` order."""
        return {b: float(self.per_cpu[cpu][b]) for b in BUCKETS}

    def totals(self) -> typing.Dict[str, float]:
        """Machine-wide CPU-second totals per bucket."""
        out = {}
        for bucket in BUCKETS:
            out[bucket] = float(
                sum(buckets[bucket] for buckets in self.per_cpu.values())
            )
        return out

    def conservation_errors(self) -> typing.List[str]:
        """Every violated conservation law (empty = buckets conserve exactly).

        Checked in exact rational arithmetic:

        * each CPU's buckets sum to ``makespan - t0``;
        * all CPU buckets together sum to ``(makespan - t0) x P``;
        * each job's buckets sum to its response time.
        """
        errors: typing.List[str] = []
        span = self.makespan - self.t0
        for cpu in sorted(self.per_cpu):
            total = sum(self.per_cpu[cpu].values())
            if total != span:
                errors.append(
                    f"cpu {cpu}: buckets sum to {float(total)!r}, "
                    f"makespan span is {float(span)!r}"
                )
        grand = sum(sum(b.values()) for b in self.per_cpu.values())
        if grand != span * self.n_processors:
            errors.append(
                f"machine: buckets sum to {float(grand)!r}, expected "
                f"makespan x P = {float(span * self.n_processors)!r}"
            )
        for job in sorted(self.per_job):
            total = sum(self.per_job[job].values())
            expected = self.response_times.get(job)
            if expected is not None and total != expected:
                errors.append(
                    f"job {job!r}: buckets sum to {float(total)!r}, "
                    f"response time is {float(expected)!r}"
                )
        return errors


class _Stint:
    """One dispatch..undispatch interval of a worker on a processor."""

    __slots__ = ("cpu", "job", "worker", "start", "end", "switch_s", "penalty_s")

    def __init__(self, record: Dispatch) -> None:
        self.cpu = record.cpu
        self.job = record.job
        self.worker = record.worker
        self.start = Fraction(record.time)
        self.end: typing.Optional[Fraction] = None
        self.switch_s = Fraction(record.switch_s)
        self.penalty_s = Fraction(record.penalty_s)

    def phase_boundaries(self) -> typing.List[typing.Tuple[Fraction, str]]:
        """(time, phase) transitions strictly inside [start, end).

        The dispatch overhead executes context switch first, then cache
        reload, then service — matching the system's refund accounting on
        mid-overhead preemption, so a truncated stint truncates phases in
        the same order the simulator consumed them.
        """
        assert self.end is not None
        out: typing.List[typing.Tuple[Fraction, str]] = []
        t = self.start + self.switch_s
        if self.switch_s > 0 and t < self.end:
            out.append((t, "reload" if self.penalty_s > 0 else "compute"))
        t = t + self.penalty_s
        if self.penalty_s > 0 and t < self.end:
            out.append((t, "compute"))
        return out

    def initial_phase(self) -> str:
        if self.switch_s > 0:
            return "switch"
        if self.penalty_s > 0:
            return "reload"
        return "compute"


def _pair_stints(records: typing.Sequence[TraceRecord]) -> typing.List[_Stint]:
    """Match every Dispatch with its Undispatch (single-placement FIFO)."""
    stints: typing.List[_Stint] = []
    open_by_key: typing.Dict[typing.Tuple[str, int], _Stint] = {}
    end_time: typing.Optional[Fraction] = None
    for record in records:
        if isinstance(record, Dispatch):
            stint = _Stint(record)
            key = (record.job, record.worker)
            if key in open_by_key:
                raise ValueError(
                    f"worker {key} dispatched twice without undispatch "
                    "(trace violates single placement; run the invariant "
                    "checker first)"
                )
            open_by_key[key] = stint
            stints.append(stint)
        elif isinstance(record, Undispatch):
            stint = open_by_key.pop((record.job, record.worker), None)
            if stint is not None:
                stint.end = Fraction(record.time)
        elif isinstance(record, RunEnd):
            end_time = Fraction(record.time)
    for stint in open_by_key.values():
        stint.end = end_time if end_time is not None else stint.start
    return stints


def sweep(records: typing.Sequence[TraceRecord]) -> typing.List[Slice]:
    """Replay ``records`` into elementary constant-state time slices.

    The slices tile ``[first record time, last record time]``; every
    allocation change, dispatch/undispatch, job arrival/departure and
    dispatch-overhead phase transition starts a new slice.  This is the
    shared substrate of :func:`attribute_time`, the interval series, and
    the ASCII timeline.
    """
    records = list(records)
    if not records:
        return []
    stints = _pair_stints(records)

    # (time, seq, apply) events; seq keeps same-time application order
    # deterministic (record order first, synthetic phase edges after the
    # dispatch that created them).
    events: typing.List[typing.Tuple[Fraction, int, typing.Callable[[], None]]] = []
    running: typing.Dict[int, typing.Tuple[str, int, str]] = {}
    owners: typing.Dict[int, str] = {}
    alive: typing.Set[str] = set()

    def _arrive(job: str) -> typing.Callable[[], None]:
        return lambda: alive.add(job)

    def _depart(job: str) -> typing.Callable[[], None]:
        return lambda: alive.discard(job)

    def _own(cpu: int, job: typing.Optional[str]) -> typing.Callable[[], None]:
        def apply() -> None:
            if job is None:
                owners.pop(cpu, None)
            else:
                owners[cpu] = job
        return apply

    def _run(cpu: int, job: str, worker: int, phase: str) -> typing.Callable[[], None]:
        return lambda: running.__setitem__(cpu, (job, worker, phase))

    def _stop(cpu: int) -> typing.Callable[[], None]:
        return lambda: running.pop(cpu, None)

    seq = 0
    stint_iter = iter(stints)
    for record in records:
        time = Fraction(record.time)
        if isinstance(record, JobArrival):
            events.append((time, seq, _arrive(record.job)))
        elif isinstance(record, JobDeparture):
            events.append((time, seq, _depart(record.job)))
        elif isinstance(record, AllocationChange):
            events.append((time, seq, _own(record.cpu, record.job)))
        elif isinstance(record, Dispatch):
            stint = next(stint_iter)
            events.append(
                (time, seq, _run(stint.cpu, stint.job, stint.worker, stint.initial_phase()))
            )
            for edge_time, phase in stint.phase_boundaries():
                seq += 1
                events.append(
                    (edge_time, seq, _run(stint.cpu, stint.job, stint.worker, phase))
                )
        elif isinstance(record, Undispatch):
            events.append((time, seq, _stop(record.cpu)))
        seq += 1

    events.sort(key=lambda item: (item[0], item[1]))
    slices: typing.List[Slice] = []
    prev_time = Fraction(records[0].time)
    end_time = Fraction(records[-1].time)
    index = 0
    while index < len(events):
        event_time = events[index][0]
        if event_time > prev_time:
            slices.append(
                Slice(
                    start=prev_time,
                    end=event_time,
                    running=dict(running),
                    owners=dict(owners),
                    alive=frozenset(alive),
                )
            )
            prev_time = event_time
        # Apply every event at this timestamp before measuring onward.
        while index < len(events) and events[index][0] == event_time:
            events[index][2]()
            index += 1
    if end_time > prev_time:
        slices.append(
            Slice(
                start=prev_time,
                end=end_time,
                running=dict(running),
                owners=dict(owners),
                alive=frozenset(alive),
            )
        )
    return slices


def attribute_time(records: typing.Sequence[TraceRecord]) -> TimeAttribution:
    """Charge every simulated second of a traced run to one bucket.

    Requires a complete scheduling trace (leading
    :class:`~repro.obs.records.RunConfig`, trailing
    :class:`~repro.obs.records.RunEnd` — see
    :func:`repro.reporting.obs_export.validate_stream`).

    Raises:
        ValueError: if the trace lacks the run_config/run_end framing.
    """
    records = list(records)
    config = records[0] if records else None
    if not isinstance(config, RunConfig):
        raise ValueError("time attribution needs a trace starting with run_config")
    run_end = records[-1]
    if not isinstance(run_end, RunEnd):
        raise ValueError("time attribution needs a trace ending with run_end")

    n_processors = config.n_processors
    per_cpu: typing.Dict[int, typing.Dict[str, Fraction]] = {
        cpu: {b: Fraction(0) for b in BUCKETS} for cpu in range(n_processors)
    }
    per_job: typing.Dict[str, typing.Dict[str, Fraction]] = {}
    arrivals: typing.Dict[str, Fraction] = {}
    departures: typing.Dict[str, Fraction] = {}
    for record in records:
        if isinstance(record, JobArrival):
            arrivals[record.job] = Fraction(record.time)
            per_job.setdefault(record.job, {b: Fraction(0) for b in BUCKETS})
        elif isinstance(record, JobDeparture):
            departures[record.job] = Fraction(record.time)

    for piece in sweep(records):
        dt = piece.duration
        # CPU-second view: every processor is in exactly one state.
        by_job: typing.Dict[str, typing.List[str]] = {}
        for cpu in range(n_processors):
            state = piece.running.get(cpu)
            if state is not None:
                job, _worker, phase = state
                per_cpu[cpu][phase] += dt
                by_job.setdefault(job, []).append(phase)
            else:
                per_cpu[cpu]["idle"] += dt
        # Wall-clock view: each alive job's second splits across its
        # running workers (so the shares sum back to dt exactly).
        owned: typing.Dict[str, int] = {}
        for job in piece.owners.values():
            owned[job] = owned.get(job, 0) + 1
        for job in piece.alive:
            buckets = per_job.setdefault(job, {b: Fraction(0) for b in BUCKETS})
            phases = by_job.get(job)
            if phases:
                share = dt / len(phases)
                for phase in phases:
                    buckets[phase] += share
            elif owned.get(job, 0) > 0:
                buckets["idle"] += dt
            else:
                buckets["wait"] += dt

    response_times = {
        job: departures[job] - arrivals[job]
        for job in departures
        if job in arrivals
    }
    return TimeAttribution(
        policy=config.policy,
        seed=config.seed,
        n_processors=n_processors,
        t0=Fraction(config.time),
        makespan=Fraction(run_end.time),
        per_job=per_job,
        per_cpu=per_cpu,
        response_times=response_times,
    )


def cpu_state_segments(
    records: typing.Sequence[TraceRecord],
) -> typing.Dict[int, typing.List[typing.Tuple[float, float, str]]]:
    """Per-CPU (start, end, state) runs for the ASCII timeline renderer.

    States come from :data:`CPU_STATES`; adjacent equal-state slices are
    coalesced.
    """
    config = records[0] if records else None
    if not isinstance(config, RunConfig):
        raise ValueError("timeline needs a trace starting with run_config")
    segments: typing.Dict[int, typing.List[typing.Tuple[float, float, str]]] = {
        cpu: [] for cpu in range(config.n_processors)
    }
    for piece in sweep(records):
        start, end = float(piece.start), float(piece.end)
        for cpu in range(config.n_processors):
            state = piece.running.get(cpu)
            if state is not None:
                label = state[2]
            elif cpu in piece.owners:
                label = "held"
            else:
                label = "free"
            runs = segments[cpu]
            if runs and runs[-1][2] == label and runs[-1][1] == start:
                runs[-1] = (runs[-1][0], end, label)
            else:
                runs.append((start, end, label))
    return segments
