"""Self-profiling: a wall-clock span timer with a null fast path.

Where the tracer and metrics registry observe the *simulated* machine,
the span profiler observes the *simulator*: real (monotonic) seconds
spent inside the run loop, the cache batch path, policy decisions, and
replication workers.  The design copies the Tracer's cost discipline —
instrumented code holds an optional profiler and guards with::

    prof = self.profiler
    if prof is not None and prof.enabled:
        prof.push("cache/access_batch")
        ...
        prof.pop()

so the disabled path is one attribute load and branch per operation
(benchmarked by ``test_profiler_disabled_overhead`` in
``benchmarks/bench_simulator_performance.py``, CI guard at 5%).

Spans nest: ``pop`` charges the elapsed time to the span's name
*inclusively* and to its *exclusive* time net of child spans, so the
aggregate table answers "where does the wall clock actually go" at both
granularities.  Snapshots are schema-tagged plain dicts that merge like
metrics snapshots (calls/times add, max combines) — per-replication
profiles from worker processes travel home the same way metrics do.
Unlike metrics, profile *values* are wall-clock measurements and are
inherently nondeterministic; only the snapshot *shape* is stable.
"""

from __future__ import annotations

import time
import typing

#: Profile snapshot schema identifier, bumped on incompatible changes.
PROFILE_SCHEMA = "repro.profile/1"


class _Span:
    """Context-manager sugar over ``push``/``pop`` for non-hot-path code."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "SpanProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> None:
        self._profiler.push(self._name)

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.pop()


class SpanProfiler:
    """Aggregates named wall-clock spans into inclusive/exclusive totals.

    Args:
        clock: a monotonic ``() -> float`` seconds source; injectable for
            deterministic tests (defaults to :func:`time.perf_counter`).
    """

    #: guard checked by instrumented code before doing any timing work
    enabled: bool = True

    def __init__(self, clock: typing.Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        #: open spans: [name, start, child_inclusive_seconds]
        self._stack: typing.List[typing.List[typing.Any]] = []
        #: name -> [calls, inclusive_s, exclusive_s, max_s]
        self._spans: typing.Dict[str, typing.List[float]] = {}

    # -- recording ------------------------------------------------------- #

    def push(self, name: str) -> None:
        """Open a span called ``name`` at the current clock reading."""
        self._stack.append([name, self._clock(), 0.0])

    def pop(self) -> None:
        """Close the innermost open span and charge its elapsed time.

        A directly recursive span double-counts inclusive time (each
        level charges its full duration); exclusive time stays exact.
        """
        name, start, child = self._stack.pop()
        duration = self._clock() - start
        if self._stack:
            self._stack[-1][2] += duration
        agg = self._spans.get(name)
        if agg is None:
            agg = self._spans[name] = [0, 0.0, 0.0, 0.0]
        agg[0] += 1
        agg[1] += duration
        agg[2] += duration - child
        if duration > agg[3]:
            agg[3] = duration

    def span(self, name: str) -> _Span:
        """``with profiler.span("stage"): ...`` for non-hot-path call sites."""
        return _Span(self, name)

    # -- snapshots ------------------------------------------------------- #

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        """The aggregate table as a plain, schema-tagged, mergeable dict.

        Raises:
            RuntimeError: if spans are still open (the table would be
                missing their time and could never merge consistently).
        """
        if self._stack:
            open_names = [frame[0] for frame in self._stack]
            raise RuntimeError(f"snapshot with open spans: {open_names}")
        return {
            "schema": PROFILE_SCHEMA,
            "spans": {
                name: {
                    "calls": int(agg[0]),
                    "inclusive_s": agg[1],
                    "exclusive_s": agg[2],
                    "max_s": agg[3],
                }
                for name, agg in sorted(self._spans.items())
            },
        }

    def merge_snapshot(self, snapshot: typing.Mapping[str, typing.Any]) -> None:
        """Fold another profiler's snapshot into this one.

        Raises:
            ValueError: on a schema mismatch or malformed snapshot.
        """
        validate_profile(snapshot)
        for name, data in snapshot["spans"].items():
            agg = self._spans.get(name)
            if agg is None:
                agg = self._spans[name] = [0, 0.0, 0.0, 0.0]
            agg[0] += data["calls"]
            agg[1] += data["inclusive_s"]
            agg[2] += data["exclusive_s"]
            if data["max_s"] > agg[3]:
                agg[3] = data["max_s"]

    @classmethod
    def merged(
        cls, snapshots: typing.Iterable[typing.Mapping[str, typing.Any]]
    ) -> typing.Dict[str, typing.Any]:
        """Merge ``snapshots`` into one snapshot dict."""
        profiler = cls()
        for snapshot in snapshots:
            profiler.merge_snapshot(snapshot)
        return profiler.snapshot()


class NullSpanProfiler(SpanProfiler):
    """A profiler that measures nothing and costs (almost) nothing.

    ``enabled`` is False so guarded call sites skip the clock reads
    entirely; ``push``/``pop`` are no-ops for anything that calls them
    unconditionally.
    """

    enabled = False

    def push(self, name: str) -> None:
        pass

    def pop(self) -> None:
        pass


def validate_profile(snapshot: typing.Mapping[str, typing.Any]) -> None:
    """Check that a profile snapshot is structurally valid.

    Raises:
        ValueError: describing the first problem found.
    """
    if not isinstance(snapshot, typing.Mapping):
        raise ValueError("profile snapshot must be a mapping")
    if snapshot.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"unknown profile schema {snapshot.get('schema')!r}; "
            f"expected {PROFILE_SCHEMA!r}"
        )
    spans = snapshot.get("spans")
    if not isinstance(spans, typing.Mapping):
        raise ValueError("profile section 'spans' missing or not a mapping")
    for name, data in spans.items():
        if not isinstance(data, typing.Mapping):
            raise ValueError(f"span {name!r} is not a mapping")
        for key in ("calls", "inclusive_s", "exclusive_s", "max_s"):
            if key not in data:
                raise ValueError(f"span {name!r} is missing {key!r}")
        if data["calls"] < 0 or data["inclusive_s"] < 0 or data["max_s"] < 0:
            raise ValueError(f"span {name!r} has negative totals")
