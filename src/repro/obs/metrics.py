"""Counters, gauges and histograms with deterministic snapshots and merges.

A :class:`MetricsRegistry` is the aggregate-shaped side of observability:
where the tracer records *what happened*, the registry accumulates *how
much*.  Snapshots are plain dicts with a schema tag, fully ordered (keys
sorted at serialization time) and mergeable: merging the per-replication
snapshots of a parallel run **in replication commit order** produces
bit-identical results to a serial run, extending the engine's
determinism contract to metrics (see ``repro.measure.runner``).

Merge semantics per instrument:

* counter — values add;
* gauge — the later snapshot wins (commit order is deterministic);
* histogram — bucket counts, count and sum add; min/max combine.
"""

from __future__ import annotations

import typing

#: Snapshot schema identifier, bumped on incompatible layout changes.
#: v2: histogram snapshots carry a derived ``mean`` (= sum/count, 0.0 when
#: empty) so downstream consumers (CSV export, interval series) never
#: recompute it inconsistently.
SNAPSHOT_SCHEMA = "repro.metrics/2"

#: Default histogram bucket upper bounds (seconds-ish scale; the catalog's
#: histograms observe either seconds or small integer depths, both of
#: which resolve well on a coarse geometric ladder).
DEFAULT_BUCKETS: typing.Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0,
)


class Counter:
    """A monotonically-increasing total (ints or float totals alike)."""

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value; ``set`` overwrites."""

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A fixed-bucket histogram with running count/sum/min/max.

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the implicit overflow bucket (``len(bounds)``-th count).
    """

    def __init__(self, bounds: typing.Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds: typing.Tuple[float, ...] = tuple(bounds)
        self.counts: typing.List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: typing.Optional[float] = None
        self.max: typing.Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        """Average of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics, created on first use.

    A name identifies exactly one instrument; asking for the same name
    with a different instrument type is an error (it would make snapshots
    ambiguous).
    """

    def __init__(self) -> None:
        self._counters: typing.Dict[str, Counter] = {}
        self._gauges: typing.Dict[str, Gauge] = {}
        self._histograms: typing.Dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------- #

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        metric = self._counters.get(name)
        if metric is None:
            self._check_unique(name, "counter")
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unique(name, "gauge")
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: typing.Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unique(name, "histogram")
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    # -- snapshots ------------------------------------------------------- #

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        """The registry as a plain, schema-tagged, mergeable dict."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean(),
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: typing.Mapping[str, typing.Any]) -> None:
        """Fold another registry's snapshot into this one.

        Raises:
            ValueError: on a schema mismatch or incompatible histogram
                bucket bounds.
        """
        validate_snapshot(snapshot)
        for name, value in snapshot["counters"].items():
            self.counter(name).value += value
        for name, value in snapshot["gauges"].items():
            self.gauge(name).set(value)
        for name, data in snapshot["histograms"].items():
            hist = self.histogram(name, data["bounds"])
            if list(hist.bounds) != list(data["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ; cannot merge"
                )
            hist.counts = [a + b for a, b in zip(hist.counts, data["counts"])]
            hist.count += data["count"]
            hist.sum += data["sum"]
            for attr, pick in (("min", min), ("max", max)):
                theirs = data[attr]
                if theirs is not None:
                    mine = getattr(hist, attr)
                    setattr(hist, attr, theirs if mine is None else pick(mine, theirs))

    @classmethod
    def merged(
        cls, snapshots: typing.Iterable[typing.Mapping[str, typing.Any]]
    ) -> typing.Dict[str, typing.Any]:
        """Merge ``snapshots`` in the given order into one snapshot dict."""
        registry = cls()
        for snapshot in snapshots:
            registry.merge_snapshot(snapshot)
        return registry.snapshot()


def validate_snapshot(snapshot: typing.Mapping[str, typing.Any]) -> None:
    """Check that ``snapshot`` is structurally valid.

    Raises:
        ValueError: describing the first problem found.
    """
    if not isinstance(snapshot, typing.Mapping):
        raise ValueError("snapshot must be a mapping")
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"unknown snapshot schema {snapshot.get('schema')!r}; "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )
    for section in ("counters", "gauges", "histograms"):
        table = snapshot.get(section)
        if not isinstance(table, typing.Mapping):
            raise ValueError(f"snapshot section {section!r} missing or not a mapping")
    for name, value in snapshot["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(f"counter {name!r} has invalid value {value!r}")
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)):
            raise ValueError(f"gauge {name!r} has invalid value {value!r}")
    for name, data in snapshot["histograms"].items():
        if not isinstance(data, typing.Mapping):
            raise ValueError(f"histogram {name!r} is not a mapping")
        for key in ("bounds", "counts", "count", "sum", "mean", "min", "max"):
            if key not in data:
                raise ValueError(f"histogram {name!r} is missing {key!r}")
        expected_mean = data["sum"] / data["count"] if data["count"] else 0.0
        if data["mean"] != expected_mean:
            raise ValueError(
                f"histogram {name!r} mean {data['mean']!r} does not equal "
                f"sum/count ({expected_mean!r})"
            )
        if len(data["counts"]) != len(data["bounds"]) + 1:
            raise ValueError(
                f"histogram {name!r} needs len(bounds)+1 counts, got "
                f"{len(data['counts'])}"
            )
        if sum(data["counts"]) != data["count"]:
            raise ValueError(f"histogram {name!r} bucket counts do not sum to count")
        if list(data["bounds"]) != sorted(data["bounds"]):
            raise ValueError(f"histogram {name!r} bounds are not sorted")
