"""Typed, timestamped trace records.

Every observable fact about a run — a job arriving, a processor changing
hands, a policy decision with its reasoning, a cache flush — becomes one
immutable record.  Records are plain dataclasses with a stable ``kind``
string, and serialize to flat, key-sorted dicts (see
:func:`record_to_dict` and :mod:`repro.reporting.obs_export`), so a trace
is both a Python object stream and a diff-friendly JSONL artifact.

The record set is the contract the invariant checker
(:mod:`repro.obs.invariants`) and the replay verifier
(:mod:`repro.obs.replay`) consume; extend it, don't repurpose fields.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """Base of every trace record: a timestamp in virtual seconds."""

    kind: typing.ClassVar[str] = "record"
    time: float


@dataclasses.dataclass(frozen=True)
class RunConfig(TraceRecord):
    """Emitted once at run start: everything the checkers need to know."""

    kind: typing.ClassVar[str] = "run_config"
    policy: str
    n_processors: int
    seed: int
    jobs: typing.Tuple[str, ...]
    machine: str
    cache_lines: int
    miss_time_s: float
    context_switch_s: float
    respect_priority: bool
    use_affinity: bool


@dataclasses.dataclass(frozen=True)
class JobArrival(TraceRecord):
    """A job entered the system."""

    kind: typing.ClassVar[str] = "job_arrival"
    job: str


@dataclasses.dataclass(frozen=True)
class JobDeparture(TraceRecord):
    """A job completed; ``response_time`` is the system's own accounting."""

    kind: typing.ClassVar[str] = "job_departure"
    job: str
    response_time: float
    n_reallocations: int


@dataclasses.dataclass(frozen=True)
class AllocationChange(TraceRecord):
    """Processor ``cpu`` changed owner from ``prev`` to ``job`` (None = free)."""

    kind: typing.ClassVar[str] = "alloc"
    cpu: int
    job: typing.Optional[str]
    prev: typing.Optional[str]


@dataclasses.dataclass(frozen=True)
class Dispatch(TraceRecord):
    """A worker was placed on a processor (a reallocation unless ``cheap``)."""

    kind: typing.ClassVar[str] = "dispatch"
    cpu: int
    job: str
    worker: int
    affine: bool
    cheap: bool
    penalty_s: float
    switch_s: float
    ready_depth: int


@dataclasses.dataclass(frozen=True)
class Undispatch(TraceRecord):
    """A worker left its processor (``reason``: preempt | idle | done)."""

    kind: typing.ClassVar[str] = "undispatch"
    cpu: int
    job: str
    worker: int
    reason: str


@dataclasses.dataclass(frozen=True)
class PolicyDecision(TraceRecord):
    """One allocation decision, with the evidence it was based on.

    ``rule`` names the Section 5 rule ("A.1", "D.1", "D.2", "D.3",
    "priority", "EQ"); ``credits`` snapshots the credit-scheduler state of
    every job the decision weighed, which is what lets the invariant layer
    re-check the priority ordering mechanically.
    """

    kind: typing.ClassVar[str] = "decision"
    rule: str
    job: typing.Optional[str]
    cpu: typing.Optional[int]
    reason: str
    credits: typing.Mapping[str, float] = dataclasses.field(default_factory=dict)
    allocations: typing.Mapping[str, int] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class JobCancelled(TraceRecord):
    """A job was cancelled (open-system disruption); ``work_done`` is the
    compute it had completed, which conservation checks must still account."""

    kind: typing.ClassVar[str] = "job_cancelled"
    job: str
    work_done: float


@dataclasses.dataclass(frozen=True)
class CpuFailure(TraceRecord):
    """A processor went offline; its private cache contents are lost."""

    kind: typing.ClassVar[str] = "cpu_failure"
    cpu: int


@dataclasses.dataclass(frozen=True)
class CpuRecovery(TraceRecord):
    """A failed processor came back online (cold cache)."""

    kind: typing.ClassVar[str] = "cpu_recovery"
    cpu: int


@dataclasses.dataclass(frozen=True)
class CacheFlush(TraceRecord):
    """A private cache was invalidated (the Section 4 migrating regime)."""

    kind: typing.ClassVar[str] = "cache_flush"
    cpu: int
    lines: int


@dataclasses.dataclass(frozen=True)
class CacheBatch(TraceRecord):
    """One batched access run through a cache (the measurement hot path)."""

    kind: typing.ClassVar[str] = "cache_batch"
    cpu: int
    owner: str
    n: int
    hits: int


@dataclasses.dataclass(frozen=True)
class EngineEvent(TraceRecord):
    """One fired discrete event (verbose; off by default)."""

    kind: typing.ClassVar[str] = "engine_event"
    label: str


@dataclasses.dataclass(frozen=True)
class RunEnd(TraceRecord):
    """Emitted once at run end."""

    kind: typing.ClassVar[str] = "run_end"
    makespan: float
    events_fired: int


#: kind string -> record class, for deserialization.
RECORD_KINDS: typing.Dict[str, type] = {
    cls.kind: cls
    for cls in (
        RunConfig,
        JobArrival,
        JobDeparture,
        JobCancelled,
        CpuFailure,
        CpuRecovery,
        AllocationChange,
        Dispatch,
        Undispatch,
        PolicyDecision,
        CacheFlush,
        CacheBatch,
        EngineEvent,
        RunEnd,
    )
}


def record_to_dict(record: TraceRecord) -> typing.Dict[str, object]:
    """Flatten a record to a plain dict, with its ``kind`` included."""
    out: typing.Dict[str, object] = {"kind": record.kind}
    for field in dataclasses.fields(record):
        value = getattr(record, field.name)
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, typing.Mapping):
            value = dict(value)
        out[field.name] = value
    return out


def record_from_dict(data: typing.Mapping[str, object]) -> TraceRecord:
    """Rebuild a typed record from :func:`record_to_dict` output.

    Raises:
        ValueError: on an unknown ``kind`` or missing fields.
    """
    kind = data.get("kind")
    cls = RECORD_KINDS.get(typing.cast(str, kind))
    if cls is None:
        raise ValueError(f"unknown trace record kind {kind!r}")
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    if "jobs" in kwargs and isinstance(kwargs["jobs"], list):
        kwargs["jobs"] = tuple(kwargs["jobs"])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(f"malformed {kind!r} record: {exc}") from exc
