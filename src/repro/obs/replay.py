"""Rebuilding run aggregates from a trace.

A trace is only trustworthy as an oracle if it is *complete*: the
aggregates the untraced run reports must be derivable from the records
alone.  :func:`replay` does that derivation — per-job response times from
arrival/departure timestamps, reallocation counts from non-cheap
dispatches, penalty totals from the charged costs — and
:func:`verify_replay` checks the result against a
:class:`~repro.core.system.SystemResult` exactly (response times are
computed by the identical subtraction, so equality is bit-for-bit).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.system import SystemResult
from repro.obs.records import (
    Dispatch,
    JobArrival,
    JobCancelled,
    JobDeparture,
    RunEnd,
    TraceRecord,
)


@dataclasses.dataclass(frozen=True)
class ReplayedJob:
    """Aggregates for one job, rebuilt purely from trace records."""

    name: str
    response_time: float
    n_reallocations: int
    n_affine: int
    cache_penalty_total: float
    switch_overhead_total: float


@dataclasses.dataclass(frozen=True)
class ReplaySummary:
    """Everything :func:`replay` could rebuild from the record stream."""

    jobs: typing.Dict[str, ReplayedJob]
    makespan: typing.Optional[float]
    #: job name -> cancellation timestamp (open-system disruptions)
    cancelled: typing.Dict[str, float] = dataclasses.field(default_factory=dict)

    def mean_response_time(self) -> float:
        """Average replayed response time (the paper's primary metric)."""
        if not self.jobs:
            return 0.0
        return sum(j.response_time for j in self.jobs.values()) / len(self.jobs)


def replay(records: typing.Iterable[TraceRecord]) -> ReplaySummary:
    """Derive per-job aggregates from ``records`` alone."""
    arrivals: typing.Dict[str, float] = {}
    departures: typing.Dict[str, float] = {}
    reallocations: typing.Dict[str, int] = {}
    affine: typing.Dict[str, int] = {}
    penalties: typing.Dict[str, float] = {}
    switches: typing.Dict[str, float] = {}
    cancelled: typing.Dict[str, float] = {}
    makespan: typing.Optional[float] = None
    for record in records:
        if isinstance(record, JobArrival):
            arrivals[record.job] = record.time
        elif isinstance(record, JobDeparture):
            departures[record.job] = record.time
        elif isinstance(record, JobCancelled):
            cancelled[record.job] = record.time
        elif isinstance(record, Dispatch):
            if not record.cheap:
                reallocations[record.job] = reallocations.get(record.job, 0) + 1
                if record.affine:
                    affine[record.job] = affine.get(record.job, 0) + 1
                penalties[record.job] = penalties.get(record.job, 0.0) + record.penalty_s
                switches[record.job] = switches.get(record.job, 0.0) + record.switch_s
        elif isinstance(record, RunEnd):
            makespan = record.makespan
    jobs = {
        name: ReplayedJob(
            name=name,
            response_time=departures[name] - arrivals[name],
            n_reallocations=reallocations.get(name, 0),
            n_affine=affine.get(name, 0),
            cache_penalty_total=penalties.get(name, 0.0),
            switch_overhead_total=switches.get(name, 0.0),
        )
        for name in departures
        if name in arrivals
    }
    return ReplaySummary(jobs=jobs, makespan=makespan, cancelled=cancelled)


def verify_replay(
    records: typing.Iterable[TraceRecord], result: SystemResult
) -> typing.List[str]:
    """Compare a replayed trace against the run's own result.

    Response times and reallocation counts must match *exactly* (they are
    computed by identical operations on identical values); penalty totals
    are compared within float-summation slack, since the run accumulates
    them in a different order than the replay and may refund a partially
    consumed charge on preemption.

    Returns:
        A list of mismatch descriptions (empty = the trace is complete).
    """
    summary = replay(records)
    problems: typing.List[str] = []
    for name, metrics in result.jobs.items():
        replayed = summary.jobs.get(name)
        if replayed is None:
            problems.append(f"job {name!r} finished but never departed in the trace")
            continue
        if replayed.response_time != metrics.response_time:
            problems.append(
                f"job {name!r}: replayed response time {replayed.response_time!r} "
                f"!= reported {metrics.response_time!r}"
            )
        if replayed.n_reallocations != metrics.n_reallocations:
            problems.append(
                f"job {name!r}: replayed {replayed.n_reallocations} reallocations "
                f"!= reported {metrics.n_reallocations}"
            )
    extra = set(summary.jobs) - set(result.jobs)
    if extra:
        problems.append(f"trace contains unreported jobs {sorted(extra)}")
    for name, when in result.cancelled.items():
        replayed_when = summary.cancelled.get(name)
        if replayed_when is None:
            problems.append(
                f"job {name!r} was cancelled but the trace has no "
                "job_cancelled record"
            )
        elif replayed_when != when:
            problems.append(
                f"job {name!r}: replayed cancellation time {replayed_when!r} "
                f"!= reported {when!r}"
            )
    extra_cancelled = set(summary.cancelled) - set(result.cancelled)
    if extra_cancelled:
        problems.append(
            f"trace cancels jobs the run never cancelled {sorted(extra_cancelled)}"
        )
    if summary.makespan is not None and summary.makespan != result.makespan:
        problems.append(
            f"replayed makespan {summary.makespan!r} != reported {result.makespan!r}"
        )
    return problems
