"""Single-pass streaming pipeline: consume records as the run emits them.

The batch observability path is: run with a :class:`Tracer`, materialize
``tracer.records``, then walk that list once per analysis (invariants,
metrics replay, export).  At fleet scale the list itself is the problem
— a million-job sweep cell emits tens of millions of records.  This
module inverts the flow: a :class:`StreamingTracer` fans each record out
to *consumers* the moment it is emitted and keeps nothing, so a whole
matrix cell can be invariant-checked, metric-aggregated and written to
the columnar store in one pass with bounded memory.

Consumers are anything with ``feed(record)`` — the incremental oracle
(:class:`repro.obs.invariants.StreamingChecker`), the derived-metrics
aggregator (:class:`StreamingMetrics`), the columnar writer
(:class:`repro.obs.store.ColumnarTraceWriter`), or ad-hoc lambdas in
tests.  An optional ``close()`` is called when the tracer is closed.

:class:`StreamingMetrics` rebuilds, from records alone, exactly the
scheduling-run metric catalog :class:`~repro.core.system.SchedulingSystem`
populates — same instruments, same accumulation order (record order ==
emission order), so its registry snapshot is **bit-identical** to the
run's own.  (Only the scheduling catalog: ``penalty/*`` instruments from
the Section-4 measurement harness are not derivable from scheduling
records and are out of scope.)  This is differential-tested across the
full policy × scenario × seed oracle matrix.
"""

from __future__ import annotations

import typing

from repro.obs.metrics import MetricsRegistry
from repro.obs.records import (
    AllocationChange,
    CacheFlush,
    CpuFailure,
    CpuRecovery,
    Dispatch,
    EngineEvent,
    JobArrival,
    JobCancelled,
    JobDeparture,
    PolicyDecision,
    RunEnd,
    TraceRecord,
    Undispatch,
)
from repro.obs.tracer import Tracer


class Consumer(typing.Protocol):
    """What a streaming consumer must provide."""

    def feed(self, record: TraceRecord) -> None:  # pragma: no cover - protocol
        ...


class StreamingMetrics:
    """Rebuild the scheduling-run metric catalog from the record stream.

    Every ``metrics.counter(...)`` / ``gauge`` / ``histogram`` call
    :class:`~repro.core.system.SchedulingSystem` makes during a traced
    run has a corresponding record carrying the same value, emitted at
    the same point in the event order.  Feeding those records through
    this class therefore performs the *identical* sequence of float
    accumulations, which makes ``registry.snapshot()`` bit-identical to
    the live run's — the property the streaming differential tests pin.

    Memory: one :class:`MetricsRegistry` (O(distinct metric names)).
    """

    def __init__(self, registry: typing.Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def feed(self, record: TraceRecord) -> None:
        """Apply one record's metric contributions to the registry."""
        metrics = self.registry
        if isinstance(record, Dispatch):
            metrics.counter("dispatch/total").inc()
            metrics.histogram("dispatch/ready_depth").observe(record.ready_depth)
            if not record.cheap:
                metrics.counter("dispatch/reallocations").inc()
                if record.affine:
                    metrics.counter("dispatch/affine").inc()
                metrics.counter("dispatch/cache_penalty_s").inc(record.penalty_s)
                metrics.counter("dispatch/switch_overhead_s").inc(record.switch_s)
                metrics.histogram("dispatch/penalty_s").observe(record.penalty_s)
        elif isinstance(record, Undispatch):
            if record.reason == "preempt":
                metrics.counter("dispatch/preemptions").inc()
        elif isinstance(record, PolicyDecision):
            metrics.counter(f"policy/decisions/{record.rule}").inc()
        elif isinstance(record, AllocationChange):
            metrics.counter("alloc/changes").inc()
        elif isinstance(record, JobArrival):
            metrics.counter("jobs/arrived").inc()
        elif isinstance(record, JobDeparture):
            metrics.counter("jobs/completed").inc()
            metrics.histogram("jobs/response_s").observe(record.response_time)
        elif isinstance(record, JobCancelled):
            metrics.counter("jobs/cancelled").inc()
            metrics.counter("jobs/cancelled_work_s").inc(record.work_done)
        elif isinstance(record, CpuFailure):
            metrics.counter("cpu/failures").inc()
        elif isinstance(record, CacheFlush):
            metrics.counter("cpu/flushed_lines").inc(record.lines)
        elif isinstance(record, CpuRecovery):
            metrics.counter("cpu/recoveries").inc()
        elif isinstance(record, RunEnd):
            metrics.gauge("run/makespan_s").set(record.makespan)
            metrics.counter("run/events_fired").inc(record.events_fired)

    def snapshot(self) -> typing.Dict[str, typing.Any]:
        """The derived registry's snapshot (see ``MetricsRegistry``)."""
        return self.registry.snapshot()


def derive_metrics(
    records: typing.Iterable[TraceRecord],
    registry: typing.Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Batch convenience: stream ``records`` through :class:`StreamingMetrics`."""
    streaming = StreamingMetrics(registry)
    for record in records:
        streaming.feed(record)
    return streaming.registry


class StreamingTracer(Tracer):
    """A tracer that forwards records to consumers instead of keeping them.

    Drop-in wherever a :class:`Tracer` is accepted (``enabled`` is True,
    so instrumented guards still construct records), but ``records``
    stays empty forever: each emission is pushed through every consumer
    and then dropped.  ``len()`` reports how many records flowed through.

    Consumers fire in registration order — so registering a
    :class:`~repro.obs.invariants.StreamingChecker` before a columnar
    writer checks each record before it is persisted.
    """

    def __init__(
        self,
        consumers: typing.Iterable[Consumer] = (),
        capture_engine_events: bool = False,
    ) -> None:
        super().__init__(capture_engine_events=capture_engine_events)
        self.consumers: typing.List[Consumer] = list(consumers)
        self._count = 0
        self._closed = False

    def add_consumer(self, consumer: Consumer) -> None:
        """Register another consumer (fires after existing ones)."""
        self.consumers.append(consumer)

    def emit(self, record: TraceRecord) -> None:
        self._count += 1
        for consumer in self.consumers:
            consumer.feed(record)

    def engine_hook(self, time: float, label: str) -> None:
        # Tracer.engine_hook appends to self.records directly; here the
        # record flows through the consumer fan-out like any other.
        self.emit(EngineEvent(time=time, label=label))

    def close(self) -> None:
        """Close every consumer that has a ``close`` (e.g. columnar writers)."""
        if self._closed:
            return
        self._closed = True
        for consumer in self.consumers:
            close = getattr(consumer, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "StreamingTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> typing.Iterator[TraceRecord]:
        raise TypeError(
            "StreamingTracer retains no records; attach a consumer (e.g. a "
            "ColumnarTraceWriter) to capture the stream"
        )

    def __repr__(self) -> str:
        return (
            f"StreamingTracer(consumers={len(self.consumers)}, "
            f"records_seen={self._count})"
        )
