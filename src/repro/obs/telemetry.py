"""Run telemetry: heartbeat snapshots from live runs to a watching parent.

A matrix sweep fans (scenario × policy × seed) cells out over worker
processes; until a cell finishes, the parent knows nothing.  This module
adds the missing live signal without touching determinism: a
:class:`HeartbeatEmitter` rides a run's engine trace hook, counts fired
events, and every so often (wall-clock throttled) pushes a
:class:`TelemetrySnapshot` — progress only, never results — into a
*sink*.  Sinks are plain callables; :class:`TelemetryChannel` provides
the cross-process one (a managed queue drained by a parent thread) and
:class:`TelemetryCollector` folds whatever arrives into a summary.

Telemetry is strictly observational: snapshots carry wall-clock rates,
so their *values* vary run to run, but nothing downstream of a sink
feeds back into scheduling — a run with heartbeats attached commits the
same results, bit for bit, as one without.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time
import typing

#: Telemetry snapshot schema identifier.
TELEMETRY_SCHEMA = "repro.telemetry/1"

#: Default wall-clock spacing between heartbeats of one emitter.
DEFAULT_MIN_INTERVAL_S = 0.5

#: Events between wall-clock checks: the per-event hook cost must stay
#: negligible, so the clock is only consulted every this many events.
DEFAULT_CHECK_EVERY = 1024


@dataclasses.dataclass(frozen=True)
class TelemetrySnapshot:
    """One heartbeat: where a labelled run is and how fast it is moving."""

    label: str
    seq: int
    wall_s: float
    sim_s: float
    events: int
    records: int
    final: bool

    @property
    def events_per_s(self) -> float:
        """Fired events per wall-clock second so far."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def records_per_s(self) -> float:
        """Trace records per wall-clock second so far."""
        return self.records / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def sim_rate(self) -> float:
        """Simulated seconds per wall-clock second."""
        return self.sim_s / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        """Schema-tagged plain dict (rates included, for export)."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "label": self.label,
            "seq": self.seq,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "events": self.events,
            "records": self.records,
            "events_per_s": self.events_per_s,
            "records_per_s": self.records_per_s,
            "sim_rate": self.sim_rate,
            "final": self.final,
        }


def progress_line(snapshot: TelemetrySnapshot) -> str:
    """One human-readable progress line for a snapshot."""
    state = "done" if snapshot.final else "running"
    return (
        f"[{snapshot.label}] {state}: sim t={snapshot.sim_s:.3f}s "
        f"events={snapshot.events} ({snapshot.events_per_s:,.0f}/s) "
        f"records={snapshot.records} wall={snapshot.wall_s:.2f}s"
    )


#: Anything that accepts a snapshot (collector, queue sink, print shim).
TelemetrySink = typing.Callable[[TelemetrySnapshot], None]


class HeartbeatEmitter:
    """Counts engine events and emits throttled heartbeats to a sink.

    Attach with ``system.sim.add_trace_hook(emitter.engine_hook)`` (the
    hook fires once per discrete event, whether or not tracing is on)
    and call :meth:`finish` when the run completes so the parent always
    sees a terminal snapshot.  Between heartbeats the per-event cost is
    one increment and one modulo — the wall clock is consulted only
    every ``check_every`` events, and a heartbeat goes out at most every
    ``min_interval_s`` wall seconds.

    ``records_fn`` (e.g. ``lambda: len(tracer)``) reports how many trace
    records the run has produced; omitted, records read 0.
    """

    def __init__(
        self,
        sink: TelemetrySink,
        label: str,
        min_interval_s: float = DEFAULT_MIN_INTERVAL_S,
        check_every: int = DEFAULT_CHECK_EVERY,
        records_fn: typing.Optional[typing.Callable[[], int]] = None,
        clock: typing.Callable[[], float] = time.monotonic,
    ) -> None:
        if min_interval_s < 0:
            raise ValueError("min_interval_s must be non-negative")
        if check_every < 1:
            raise ValueError("check_every must be positive")
        self._sink = sink
        self.label = label
        self._min_interval_s = min_interval_s
        self._check_every = check_every
        self._records_fn = records_fn
        self._clock = clock
        self._t0 = clock()
        self._events = 0
        self._seq = 0
        self._last_beat_wall = 0.0
        self._finished = False

    def engine_hook(self, now: float, label: str) -> None:
        """Per-event hook: count, and heartbeat when due."""
        self._events += 1
        if self._events % self._check_every:
            return
        wall = self._clock() - self._t0
        if wall - self._last_beat_wall < self._min_interval_s:
            return
        self._beat(sim_s=now, wall_s=wall, final=False)

    def finish(self, sim_s: float) -> None:
        """Emit the terminal snapshot (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self._beat(sim_s=sim_s, wall_s=self._clock() - self._t0, final=True)

    def _beat(self, sim_s: float, wall_s: float, final: bool) -> None:
        self._last_beat_wall = wall_s
        snapshot = TelemetrySnapshot(
            label=self.label,
            seq=self._seq,
            wall_s=wall_s,
            sim_s=sim_s,
            events=self._events,
            records=self._records_fn() if self._records_fn is not None else 0,
            final=final,
        )
        self._seq += 1
        self._sink(snapshot)


class TelemetryCollector:
    """Thread-safe accumulator for heartbeats from any number of cells.

    Keeps the latest snapshot per label plus whole-sweep totals folded
    from *final* snapshots only (so a cell is counted exactly once no
    matter how many heartbeats it sent).  ``__call__`` makes it usable
    directly as a sink.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latest: typing.Dict[str, TelemetrySnapshot] = {}
        self.n_finished = 0
        self.total_events = 0
        self.total_records = 0
        self.total_wall_s = 0.0

    def __call__(self, snapshot: TelemetrySnapshot) -> None:
        with self._lock:
            self.latest[snapshot.label] = snapshot
            if snapshot.final:
                self.n_finished += 1
                self.total_events += snapshot.events
                self.total_records += snapshot.records
                self.total_wall_s += snapshot.wall_s

    def summary(self) -> typing.Dict[str, typing.Any]:
        """Whole-sweep totals and the slowest finished cell."""
        with self._lock:
            finished = [s for s in self.latest.values() if s.final]
            slowest = max(finished, key=lambda s: s.wall_s) if finished else None
            return {
                "schema": TELEMETRY_SCHEMA,
                "cells_seen": len(self.latest),
                "cells_finished": self.n_finished,
                "total_events": self.total_events,
                "total_records": self.total_records,
                "total_cell_wall_s": self.total_wall_s,
                "aggregate_events_per_s": (
                    self.total_events / self.total_wall_s
                    if self.total_wall_s > 0
                    else 0.0
                ),
                "slowest_cell": slowest.label if slowest else None,
                "slowest_cell_wall_s": slowest.wall_s if slowest else 0.0,
            }

    def render_summary(self) -> str:
        """The ``=== telemetry ===`` block body the CLI prints."""
        info = self.summary()
        lines = [
            f"cells: {info['cells_seen']} seen, "
            f"{info['cells_finished']} finished",
            f"events: {info['total_events']} total, "
            f"{info['aggregate_events_per_s']:,.0f}/s per-cell aggregate",
            f"records: {info['total_records']} total",
            f"cell wall time: {info['total_cell_wall_s']:.2f}s summed",
        ]
        if info["slowest_cell"] is not None:
            lines.append(
                f"slowest cell: {info['slowest_cell']} "
                f"({info['slowest_cell_wall_s']:.2f}s wall)"
            )
        return "\n".join(lines) + "\n"


class _QueueSink:
    """A picklable sink that forwards snapshots into a managed queue.

    The queue proxy from ``multiprocessing.Manager`` survives pickling
    into ``ProcessPoolExecutor`` workers, which is what lets worker-side
    emitters reach the parent's collector.
    """

    def __init__(self, queue: typing.Any) -> None:
        self._queue = queue

    def __call__(self, snapshot: TelemetrySnapshot) -> None:
        self._queue.put(snapshot)


class TelemetryChannel:
    """Parent-side plumbing from worker heartbeats to one ``on_snapshot``.

    Serial (``workers <= 1``): :attr:`sink` is the callback itself — no
    queue, no thread, heartbeats are delivered synchronously.  Parallel:
    :attr:`sink` is a picklable queue sink, and a daemon thread drains
    the queue into the callback until :meth:`close` (which also joins
    the thread and shuts the manager down, delivering everything the
    workers sent first).  Use as a context manager around the fan-out.
    """

    def __init__(self, workers: int, on_snapshot: TelemetrySink) -> None:
        self.on_snapshot = on_snapshot
        self._manager: typing.Optional[typing.Any] = None
        self._queue: typing.Optional[typing.Any] = None
        self._thread: typing.Optional[threading.Thread] = None
        if workers > 1:
            self._manager = multiprocessing.Manager()
            self._queue = self._manager.Queue()
            self.sink: TelemetrySink = _QueueSink(self._queue)
            self._thread = threading.Thread(
                target=self._drain, name="telemetry-drain", daemon=True
            )
            self._thread.start()
        else:
            self.sink = on_snapshot

    def _drain(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            if item is None:  # close() sentinel
                return
            self.on_snapshot(item)

    def close(self) -> None:
        """Flush and tear down (no-op for the serial direct path)."""
        if self._thread is not None:
            assert self._queue is not None and self._manager is not None
            self._queue.put(None)
            self._thread.join()
            self._manager.shutdown()
            self._thread = None
            self._manager = None
            self._queue = None

    def __enter__(self) -> "TelemetryChannel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
