"""Simulator-wide invariants, checked mechanically against a trace.

The trace emitted by an instrumented run is a complete account of every
allocation change, dispatch and policy decision.  That makes it a
*correctness oracle*: instead of asserting on end-of-run aggregates, the
checks here replay the record stream and verify that the scheduling
system never violated its own rules at any instant:

* **monotone clock** — record timestamps never decrease;
* **allocation conservation** — every processor has at most one owner,
  every ownership change's ``prev`` matches the replayed state (a grant
  of an already-owned processor — the classic double-allocation bug —
  fails here), cpu ids stay within the machine, and equipartition
  targets never sum past the machine size;
* **single placement** — no worker on two processors, no processor
  running two workers, and every dispatch lands on a processor its job
  owns at that instant;
* **lifecycle** — jobs are granted processors only between arrival and
  departure (and never after cancellation), departure response times
  equal the arrival/departure timestamps, and the run ends with every
  processor free;
* **work conservation at run end** — every job that arrived either
  departed or was explicitly cancelled; a stripped or missing
  cancellation record is flagged as lost work;
* **disruptions** — a processor fails only while free and online, is
  never granted or dispatched onto while offline, recovers only from
  the failed state, and cache flushes stay within the machine's line
  count;
* **priority order (Dyn-Aff)** — every priority dispatch picked the
  most-deserving requester, every A.1 affinity grant passed the credit
  gate, and every D.3 preemption was licensed by the credit scheme
  (re-derived from the credits snapshotted in the decision record);
* **cache accounting** — every charged reload penalty is non-negative
  and bounded by the machine's full-cache reload cost (the footprint
  model's hard cap), and cheap same-processor pickups charge nothing.

``check_trace`` returns a list of human-readable violations (empty =
clean); ``assert_trace_ok`` wraps it for tests.  Both are thin wrappers
over :class:`StreamingChecker`, which applies the same checks one record
at a time with memory bounded by the *live* simulator state (O(jobs +
processors), independent of trace length) — feed it records as the
Tracer emits them and no record list ever needs to exist.
"""

from __future__ import annotations

import typing

from repro.core.priority import CreditScheduler
from repro.obs.records import (
    AllocationChange,
    CacheFlush,
    CpuFailure,
    CpuRecovery,
    Dispatch,
    JobArrival,
    JobCancelled,
    JobDeparture,
    PolicyDecision,
    RunConfig,
    RunEnd,
    TraceRecord,
    Undispatch,
)

#: slack for float comparisons on derived (not identical-operation) values
_EPS = 1e-9


class _State:
    """Replayed simulator state while walking the record stream."""

    def __init__(self) -> None:
        self.config: typing.Optional[RunConfig] = None
        self.owner: typing.Dict[int, str] = {}          # cpu -> owning job
        self.placed: typing.Dict[typing.Tuple[str, int], int] = {}  # worker -> cpu
        self.on_cpu: typing.Dict[int, typing.Tuple[str, int]] = {}  # cpu -> worker
        self.arrived: typing.Dict[str, float] = {}
        self.departed: typing.Set[str] = set()
        self.cancelled: typing.Dict[str, float] = {}
        self.offline: typing.Set[int] = set()
        self.last_time = float("-inf")


class StreamingChecker:
    """Single-pass invariant oracle: feed records as they are emitted.

    Applies exactly the checks :func:`check_trace` applies, in the same
    order, producing the same violation strings — but one record at a
    time, so it can ride a live Tracer (see
    :class:`repro.obs.streaming.StreamingTracer`) without the trace ever
    being materialized.  Memory use is the replayed simulator state plus
    the violations found: O(jobs + processors), independent of how many
    records flow through.
    """

    def __init__(self) -> None:
        self._state = _State()
        self.violations: typing.List[str] = []
        self._index = 0

    def feed(self, record: TraceRecord) -> None:
        """Check one record against the replayed state and advance it."""
        state = self._state
        violations = self.violations
        where = f"[{self._index}] t={record.time:.9f} {record.kind}"
        self._index += 1

        if record.time < state.last_time - _EPS:
            violations.append(
                f"{where}: clock ran backwards ({record.time} < {state.last_time})"
            )
        state.last_time = max(state.last_time, record.time)

        if isinstance(record, RunConfig):
            state.config = record
        elif isinstance(record, JobArrival):
            state.arrived[record.job] = record.time
        elif isinstance(record, JobDeparture):
            _check_departure(state, record, where, violations)
        elif isinstance(record, JobCancelled):
            _check_cancellation(state, record, where, violations)
        elif isinstance(record, CpuFailure):
            _check_cpu_failure(state, record, where, violations)
        elif isinstance(record, CpuRecovery):
            if record.cpu not in state.offline:
                violations.append(
                    f"{where}: cpu {record.cpu} recovered without having failed"
                )
            state.offline.discard(record.cpu)
        elif isinstance(record, CacheFlush):
            if state.config is not None and not (
                0 <= record.lines <= state.config.cache_lines
            ):
                violations.append(
                    f"{where}: cache flush of {record.lines} lines outside "
                    f"[0, {state.config.cache_lines}]"
                )
        elif isinstance(record, AllocationChange):
            _check_alloc(state, record, where, violations)
        elif isinstance(record, Dispatch):
            _check_dispatch(state, record, where, violations)
        elif isinstance(record, Undispatch):
            _check_undispatch(state, record, where, violations)
        elif isinstance(record, PolicyDecision):
            _check_decision(state, record, where, violations)
        elif isinstance(record, RunEnd):
            if state.owner:
                violations.append(
                    f"{where}: run ended with owned processors {sorted(state.owner)}"
                )
            if state.placed:
                violations.append(
                    f"{where}: run ended with placed workers {sorted(state.placed)}"
                )
            lost = sorted(
                name
                for name in state.arrived
                if name not in state.departed and name not in state.cancelled
            )
            if lost:
                violations.append(
                    f"{where}: jobs {lost} arrived but neither departed nor "
                    "were cancelled (work conservation violated)"
                )


def check_trace(records: typing.Iterable[TraceRecord]) -> typing.List[str]:
    """Replay ``records`` and return every invariant violation found."""
    checker = StreamingChecker()
    for record in records:
        checker.feed(record)
    return checker.violations


def assert_trace_ok(records: typing.Iterable[TraceRecord]) -> None:
    """Raise AssertionError listing every violation in ``records``."""
    violations = check_trace(records)
    if violations:
        summary = "\n  ".join(violations[:20])
        more = f"\n  ... and {len(violations) - 20} more" if len(violations) > 20 else ""
        raise AssertionError(
            f"{len(violations)} trace invariant violation(s):\n  {summary}{more}"
        )


# ---------------------------------------------------------------------- #
# per-record checks


def _check_departure(
    state: _State, record: JobDeparture, where: str, violations: typing.List[str]
) -> None:
    arrival = state.arrived.get(record.job)
    if arrival is None:
        violations.append(f"{where}: job {record.job!r} departed without arriving")
        return
    if record.job in state.departed:
        violations.append(f"{where}: job {record.job!r} departed twice")
    state.departed.add(record.job)
    expected = record.time - arrival
    if record.response_time != expected:
        violations.append(
            f"{where}: job {record.job!r} reports response_time="
            f"{record.response_time!r} but trace shows {expected!r}"
        )


def _check_cancellation(
    state: _State, record: JobCancelled, where: str, violations: typing.List[str]
) -> None:
    if record.job in state.departed:
        violations.append(
            f"{where}: job {record.job!r} cancelled after departing"
        )
    if record.job in state.cancelled:
        violations.append(f"{where}: job {record.job!r} cancelled twice")
    if record.work_done < 0:
        violations.append(
            f"{where}: job {record.job!r} cancelled with negative "
            f"work_done {record.work_done}"
        )
    state.cancelled[record.job] = record.time


def _check_cpu_failure(
    state: _State, record: CpuFailure, where: str, violations: typing.List[str]
) -> None:
    n_procs = state.config.n_processors if state.config else None
    if n_procs is not None and not 0 <= record.cpu < n_procs:
        violations.append(
            f"{where}: cpu {record.cpu} outside machine of {n_procs} processors"
        )
    if record.cpu in state.offline:
        violations.append(f"{where}: cpu {record.cpu} failed while already offline")
    if record.cpu in state.owner:
        violations.append(
            f"{where}: cpu {record.cpu} failed while owned by "
            f"{state.owner[record.cpu]!r} (must be released first)"
        )
    if record.cpu in state.on_cpu:
        violations.append(
            f"{where}: cpu {record.cpu} failed while running worker "
            f"{state.on_cpu[record.cpu]}"
        )
    state.offline.add(record.cpu)


def _check_alloc(
    state: _State, record: AllocationChange, where: str, violations: typing.List[str]
) -> None:
    n_procs = state.config.n_processors if state.config else None
    if n_procs is not None and not 0 <= record.cpu < n_procs:
        violations.append(
            f"{where}: cpu {record.cpu} outside machine of {n_procs} processors"
        )
    current = state.owner.get(record.cpu)
    if current != record.prev:
        violations.append(
            f"{where}: cpu {record.cpu} owner is {current!r} but change "
            f"claims prev={record.prev!r} (conservation violated)"
        )
    if record.job is None:
        state.owner.pop(record.cpu, None)
    else:
        if current is not None and current != record.job:
            violations.append(
                f"{where}: cpu {record.cpu} granted to {record.job!r} while "
                f"owned by {current!r} (double allocation)"
            )
        if record.job not in state.arrived:
            violations.append(
                f"{where}: cpu {record.cpu} granted to {record.job!r} "
                "before its arrival"
            )
        if record.job in state.departed:
            violations.append(
                f"{where}: cpu {record.cpu} granted to departed job {record.job!r}"
            )
        if record.job in state.cancelled:
            violations.append(
                f"{where}: cpu {record.cpu} granted to cancelled job {record.job!r}"
            )
        if record.cpu in state.offline:
            violations.append(
                f"{where}: cpu {record.cpu} granted to {record.job!r} while offline"
            )
        state.owner[record.cpu] = record.job
    if n_procs is not None and len(state.owner) > n_procs:
        violations.append(
            f"{where}: {len(state.owner)} processors owned on a "
            f"{n_procs}-processor machine"
        )


def _check_dispatch(
    state: _State, record: Dispatch, where: str, violations: typing.List[str]
) -> None:
    worker = (record.job, record.worker)
    if state.owner.get(record.cpu) != record.job:
        violations.append(
            f"{where}: {record.job!r}#{record.worker} dispatched on cpu "
            f"{record.cpu} owned by {state.owner.get(record.cpu)!r}"
        )
    if worker in state.placed:
        violations.append(
            f"{where}: worker {worker} already running on cpu "
            f"{state.placed[worker]} (single placement violated)"
        )
    occupant = state.on_cpu.get(record.cpu)
    if occupant is not None:
        violations.append(
            f"{where}: cpu {record.cpu} already running worker {occupant} "
            "(single placement violated)"
        )
    state.placed[worker] = record.cpu
    state.on_cpu[record.cpu] = worker

    if record.penalty_s < 0:
        violations.append(f"{where}: negative reload penalty {record.penalty_s}")
    if state.config is not None:
        cap = state.config.cache_lines * state.config.miss_time_s
        if record.penalty_s > cap + _EPS:
            violations.append(
                f"{where}: reload penalty {record.penalty_s} exceeds the "
                f"full-cache reload bound {cap} (occupancy accounting broken)"
            )
        if not record.cheap and record.switch_s != state.config.context_switch_s:
            violations.append(
                f"{where}: reallocation charged switch cost {record.switch_s}, "
                f"machine path length is {state.config.context_switch_s}"
            )
    if record.cheap and (record.penalty_s != 0.0 or record.switch_s != 0.0):
        violations.append(
            f"{where}: cheap pickup charged penalty={record.penalty_s} "
            f"switch={record.switch_s}"
        )


def _check_undispatch(
    state: _State, record: Undispatch, where: str, violations: typing.List[str]
) -> None:
    worker = (record.job, record.worker)
    if state.placed.get(worker) != record.cpu:
        violations.append(
            f"{where}: worker {worker} left cpu {record.cpu} but was on "
            f"{state.placed.get(worker)!r}"
        )
    state.placed.pop(worker, None)
    if state.on_cpu.get(record.cpu) == worker:
        del state.on_cpu[record.cpu]


def _check_decision(
    state: _State, record: PolicyDecision, where: str, violations: typing.List[str]
) -> None:
    credits = dict(record.credits)
    if record.rule == "priority" and record.job is not None and credits:
        best = min(credits, key=lambda name: (-credits[name], name))
        if record.job != best:
            violations.append(
                f"{where}: priority dispatch chose {record.job!r} but "
                f"{best!r} is most deserving ({credits})"
            )
    elif record.rule == "A.1" and record.job is not None and credits:
        mine = credits.get(record.job)
        if mine is not None:
            others = [v for name, v in credits.items() if name != record.job]
            gate = max(others) - CreditScheduler.EQUALITY_TOLERANCE if others else None
            if gate is not None and mine < gate - _EPS:
                violations.append(
                    f"{where}: A.1 grant to {record.job!r} (credit {mine}) "
                    f"despite a more deserving requester ({credits})"
                )
    elif record.rule == "D.3" and record.job is not None:
        allocations = dict(record.allocations)
        victims = [name for name in allocations if name != record.job]
        if len(victims) == 1:
            victim = victims[0]
            v_alloc = allocations[victim]
            r_alloc = allocations[record.job]
            if v_alloc <= 1:
                violations.append(
                    f"{where}: D.3 preempted {victim!r} holding only "
                    f"{v_alloc} processor(s)"
                )
            elif v_alloc <= r_alloc + 1:
                beyond = r_alloc - v_alloc + 2
                needed = beyond * CreditScheduler.SPEND_MARGIN
                advantage = credits.get(record.job, 0.0) - credits.get(victim, 0.0)
                if advantage <= needed - _EPS:
                    violations.append(
                        f"{where}: D.3 beyond parity without the credit to "
                        f"spend (advantage {advantage}, needed > {needed})"
                    )
    elif record.rule == "EQ" and state.config is not None:
        total = sum(record.allocations.values())
        if total > state.config.n_processors:
            violations.append(
                f"{where}: equipartition targets sum to {total} on a "
                f"{state.config.n_processors}-processor machine"
            )
