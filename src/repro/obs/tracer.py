"""Trace collection with a null fast path.

Instrumented code holds an optional tracer and guards every emission with
the two-step check::

    tr = self.tracer
    if tr is not None and tr.enabled:
        tr.emit(SomeRecord(...))

so that when tracing is off (``tracer is None``, the default everywhere)
the cost is a single attribute load and branch — and, crucially, the
record is *never constructed*.  :class:`NullTracer` exists for call sites
that want an always-present tracer object (``enabled`` is False, so the
same guard skips construction); attaching it must stay within the
benchmarked overhead budget (see ``test_tracer_disabled_overhead`` in
``benchmarks/bench_simulator_performance.py``).
"""

from __future__ import annotations

import typing

from repro.obs.records import EngineEvent, TraceRecord


class Tracer:
    """Collects trace records in memory, in emission order.

    Args:
        capture_engine_events: also record every fired discrete event
            (one :class:`~repro.obs.records.EngineEvent` per event —
            verbose; useful for debugging event-ordering questions).
    """

    #: guard checked by instrumented code before constructing a record
    enabled: bool = True

    def __init__(self, capture_engine_events: bool = False) -> None:
        self.capture_engine_events = capture_engine_events
        self.records: typing.List[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def engine_hook(self, time: float, label: str) -> None:
        """Adapter for :meth:`repro.engine.simulator.Simulator.add_trace_hook`."""
        self.records.append(EngineEvent(time=time, label=label))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> typing.Iterator[TraceRecord]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"Tracer(records={len(self.records)})"


class NullTracer(Tracer):
    """A tracer that records nothing and costs (almost) nothing.

    ``enabled`` is False, so guarded call sites skip record construction;
    ``emit`` is a no-op for anything that calls it unconditionally.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capture_engine_events=False)

    def emit(self, record: TraceRecord) -> None:
        pass

    def engine_hook(self, time: float, label: str) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"
