"""Observability: structured tracing, metrics, and trace-derived oracles.

The subsystem has four pieces, layered so each consumes the one below:

* :mod:`repro.obs.records` — typed, timestamped trace records;
* :mod:`repro.obs.tracer` — collection (:class:`Tracer`) with a null
  fast path (``tracer is None`` / :class:`NullTracer`) cheap enough to
  leave compiled into every hot path;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  deterministic, order-stable snapshots and merges;
* :mod:`repro.obs.invariants` / :mod:`repro.obs.replay` — the payoff:
  the trace replayed as a correctness oracle (simulator-wide invariants,
  and aggregate reconstruction that must match the untraced run);
* :mod:`repro.obs.analysis` — trace analytics: exact time attribution,
  windowed interval series, and trace diffing;
* :mod:`repro.obs.streaming` / :mod:`repro.obs.store` — the fleet-scale
  path: a fan-out tracer that feeds the incremental oracle
  (:class:`StreamingChecker`), metric derivation
  (:class:`StreamingMetrics`) and the columnar trace store in one pass
  with bounded memory;
* :mod:`repro.obs.telemetry` — heartbeat snapshots from live runs
  (progress, rates) flowing from workers to the matrix parent;
* :mod:`repro.obs.profiling` — wall-clock self-profiling of the
  simulator itself (:class:`SpanProfiler`, null fast path like the
  tracer).
"""

from repro.obs.invariants import StreamingChecker, assert_trace_ok, check_trace

from repro.obs.metrics import (
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_snapshot,
)
from repro.obs.records import (
    AllocationChange,
    CacheBatch,
    CacheFlush,
    CpuFailure,
    CpuRecovery,
    Dispatch,
    EngineEvent,
    JobArrival,
    JobCancelled,
    JobDeparture,
    PolicyDecision,
    RECORD_KINDS,
    RunConfig,
    RunEnd,
    TraceRecord,
    Undispatch,
    record_from_dict,
    record_to_dict,
)
from repro.obs.profiling import (
    PROFILE_SCHEMA,
    NullSpanProfiler,
    SpanProfiler,
    validate_profile,
)
from repro.obs.streaming import StreamingMetrics, StreamingTracer, derive_metrics
from repro.obs.tracer import NullTracer, Tracer

__all__ = [
    "AllocationChange",
    "CacheBatch",
    "CacheFlush",
    "Counter",
    "CpuFailure",
    "CpuRecovery",
    "Dispatch",
    "EngineEvent",
    "Gauge",
    "Histogram",
    "JobArrival",
    "JobCancelled",
    "JobDeparture",
    "MetricsRegistry",
    "NullSpanProfiler",
    "NullTracer",
    "PROFILE_SCHEMA",
    "PolicyDecision",
    "RECORD_KINDS",
    "SpanProfiler",
    "RunConfig",
    "RunEnd",
    "SNAPSHOT_SCHEMA",
    "StreamingChecker",
    "StreamingMetrics",
    "StreamingTracer",
    "TraceRecord",
    "Tracer",
    "Undispatch",
    "assert_trace_ok",
    "check_trace",
    "derive_metrics",
    "record_from_dict",
    "record_to_dict",
    "validate_profile",
    "validate_snapshot",
]
