"""The columnar trace container: chunked, indexed, digest-protected.

A ``.rct`` (repro columnar trace) file holds the same record stream as a
JSONL trace, but grouped into *chunks* of consecutive records whose
fields are transposed into per-record-type column arrays and compressed.
Repeated keys vanish, runs of similar values compress together, and the
footer index makes "give me only the dispatches between t=10 and t=20"
a seek instead of a full-file parse.

Layout (all integers big-endian)::

    offset 0   MAGIC          b"RPTRCOL1"                     8 bytes
               chunk*         b"CHNK" + u32 len + zlib(JSON)
    footer     b"FOOT" + u32 len + zlib(JSON)
    tail       u64 footer offset                              8 bytes
               sha256 of everything above                    32 bytes
               END_MAGIC      b"RPTRCEND"                     8 bytes

Each chunk payload is a canonical (key-sorted, no-whitespace) JSON
object::

    {"kind_table": ["alloc", "dispatch", ...],   # kinds in this chunk
     "order":      [0, 1, 0, ...],               # per record, in stream
                                                 # order, an index into
                                                 # kind_table
     "columns":    {"alloc": {"cpu": [...], "time": [...], ...}, ...}}

so the exact interleaving of record kinds is preserved — decoding walks
``order`` and pops the next row of the named kind's columns, which makes
the JSONL -> columnar -> JSONL round trip byte-identical.

The footer carries the schema version, per-kind field lists (checked
against :data:`repro.obs.records.RECORD_KINDS` on read, so a file
written by a different record schema fails loudly), total and per-kind
record counts, and a per-chunk index ``(offset, length, n, time range,
kind counts)``.  The trailing sha256 covers every byte before it; a
flipped bit anywhere — chunk, footer, or index — is a refused load, and
a truncated file fails the END_MAGIC check before anything is parsed.

Memory bounds: the writer holds at most ``chunk_records`` records plus
the (small) footer index; the reader holds one decompressed chunk at a
time.  Neither ever materializes the whole trace.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import io
import json
import os
import struct
import tempfile
import typing
import zlib

from repro import ioutil
from repro.obs.records import (
    RECORD_KINDS,
    TraceRecord,
    record_from_dict,
    record_to_dict,
)

#: Columnar container schema identifier, bumped on incompatible changes.
COLUMNAR_SCHEMA = "repro.trace.columnar/1"

MAGIC = b"RPTRCOL1"
END_MAGIC = b"RPTRCEND"
CHUNK_MAGIC = b"CHNK"
FOOTER_MAGIC = b"FOOT"
#: u64 footer offset + 32-byte sha256 + END_MAGIC.
_TAIL_LEN = 8 + 32 + 8

#: Default records per chunk: large enough that column compression wins,
#: small enough that a reader's working set stays in cache.
DEFAULT_CHUNK_RECORDS = 4096


class ColumnarFormatError(ValueError):
    """A columnar trace file is corrupt, truncated, or incompatible.

    Subclasses :class:`ValueError` so callers that treat trace-loading
    problems generically (e.g. the CLI's ``TraceStreamError`` handling)
    can catch it without importing this module.
    """


def _field_names(cls: type) -> typing.List[str]:
    return [field.name for field in dataclasses.fields(cls)]


#: kind -> ordered field names, the column layout contract.
KIND_FIELDS: typing.Dict[str, typing.List[str]] = {
    kind: _field_names(cls) for kind, cls in RECORD_KINDS.items()
}


def _canonical_json(payload: typing.Any) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclasses.dataclass(frozen=True)
class ChunkInfo:
    """One chunk's footer-index entry."""

    offset: int
    length: int
    n_records: int
    time_min: float
    time_max: float
    kind_counts: typing.Dict[str, int]

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        return {
            "offset": self.offset,
            "length": self.length,
            "n_records": self.n_records,
            "time_min": self.time_min,
            "time_max": self.time_max,
            "kind_counts": dict(self.kind_counts),
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping[str, typing.Any]) -> "ChunkInfo":
        try:
            return cls(
                offset=data["offset"],
                length=data["length"],
                n_records=data["n_records"],
                time_min=data["time_min"],
                time_max=data["time_max"],
                kind_counts=dict(data["kind_counts"]),
            )
        except KeyError as exc:
            raise ColumnarFormatError(f"footer chunk entry missing {exc}") from exc


@dataclasses.dataclass(frozen=True)
class Footer:
    """The parsed footer index of a columnar trace file."""

    schema: str
    n_records: int
    kind_counts: typing.Dict[str, int]
    fields: typing.Dict[str, typing.List[str]]
    chunks: typing.List[ChunkInfo]

    def to_dict(self) -> typing.Dict[str, typing.Any]:
        return {
            "schema": self.schema,
            "n_records": self.n_records,
            "kind_counts": dict(self.kind_counts),
            "fields": {k: list(v) for k, v in self.fields.items()},
            "chunks": [chunk.to_dict() for chunk in self.chunks],
        }


class ColumnarTraceWriter:
    """Chunked append writer for the columnar trace container.

    Usable as a context manager or as a streaming-pipeline consumer
    (it exposes ``feed`` as an alias of :meth:`write`, so it slots
    straight into :class:`repro.obs.streaming.StreamingTracer`).  Memory
    use is bounded by ``chunk_records`` buffered records regardless of
    trace length.
    """

    def __init__(
        self,
        target: typing.Union[str, typing.BinaryIO],
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be positive")
        self._dst_path: typing.Optional[str] = None
        self._tmp_path: typing.Optional[str] = None
        if isinstance(target, str):
            # Crash-safe: stream into a same-directory temp file and only
            # os.replace it over the destination once the footer and
            # digest tail are on disk.  A process killed mid-write leaves
            # the destination untouched (at worst an orphaned .tmp-*).
            directory = os.path.dirname(os.path.abspath(target)) or "."
            fd, self._tmp_path = tempfile.mkstemp(
                prefix=ioutil.TMP_PREFIX + os.path.basename(target) + "-",
                dir=directory,
            )
            self._fh: typing.BinaryIO = os.fdopen(fd, "wb")
            self._dst_path = target
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self._chunk_records = chunk_records
        self._buffer: typing.List[TraceRecord] = []
        self._chunks: typing.List[ChunkInfo] = []
        self._kind_counts: typing.Dict[str, int] = {}
        self._n_records = 0
        self._closed = False
        self._digest = hashlib.sha256()
        self._offset = 0
        self._write_bytes(MAGIC)

    # ------------------------------------------------------------------ #

    def _write_bytes(self, data: bytes) -> None:
        self._fh.write(data)
        self._digest.update(data)
        self._offset += len(data)

    def write(self, record: TraceRecord) -> None:
        """Append one record (flushes a chunk when the buffer fills)."""
        if self._closed:
            raise ValueError("writer is closed")
        if record.kind not in RECORD_KINDS:
            raise ColumnarFormatError(
                f"cannot store unregistered record kind {record.kind!r}"
            )
        self._buffer.append(record)
        if len(self._buffer) >= self._chunk_records:
            self._flush_chunk()

    #: streaming-consumer alias (see repro.obs.streaming.StreamingTracer)
    feed = write

    def _flush_chunk(self) -> None:
        if not self._buffer:
            return
        kind_table: typing.List[str] = []
        kind_index: typing.Dict[str, int] = {}
        order: typing.List[int] = []
        columns: typing.Dict[str, typing.Dict[str, typing.List[typing.Any]]] = {}
        time_min = float("inf")
        time_max = float("-inf")
        for record in self._buffer:
            kind = record.kind
            index = kind_index.get(kind)
            if index is None:
                index = kind_index[kind] = len(kind_table)
                kind_table.append(kind)
                columns[kind] = {name: [] for name in KIND_FIELDS[kind]}
            order.append(index)
            row = record_to_dict(record)
            for name in KIND_FIELDS[kind]:
                columns[kind][name].append(row[name])
            self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
            time_min = min(time_min, record.time)
            time_max = max(time_max, record.time)
        payload = zlib.compress(
            _canonical_json(
                {"kind_table": kind_table, "order": order, "columns": columns}
            ),
            level=6,
        )
        offset = self._offset
        self._write_bytes(CHUNK_MAGIC)
        self._write_bytes(struct.pack(">I", len(payload)))
        self._write_bytes(payload)
        self._chunks.append(
            ChunkInfo(
                offset=offset,
                length=len(payload),
                n_records=len(self._buffer),
                time_min=time_min,
                time_max=time_max,
                kind_counts={k: order.count(i) for k, i in kind_index.items()},
            )
        )
        self._n_records += len(self._buffer)
        self._buffer = []

    def close(self) -> None:
        """Flush the final chunk, write the footer index and the digest tail."""
        if self._closed:
            return
        self._flush_chunk()
        footer = Footer(
            schema=COLUMNAR_SCHEMA,
            n_records=self._n_records,
            kind_counts=dict(self._kind_counts),
            fields={
                kind: KIND_FIELDS[kind] for kind in sorted(self._kind_counts)
            },
            chunks=self._chunks,
        )
        footer_offset = self._offset
        payload = zlib.compress(_canonical_json(footer.to_dict()), level=6)
        self._write_bytes(FOOTER_MAGIC)
        self._write_bytes(struct.pack(">I", len(payload)))
        self._write_bytes(payload)
        self._write_bytes(struct.pack(">Q", footer_offset))
        # The digest covers every byte written so far, footer offset
        # included; it is followed only by the end magic.
        self._fh.write(self._digest.digest())
        self._fh.write(END_MAGIC)
        self._fh.flush()
        if self._owns_fh:
            os.fsync(self._fh.fileno())
            self._fh.close()
            if self._tmp_path is not None:
                assert self._dst_path is not None
                os.replace(self._tmp_path, self._dst_path)
                self._tmp_path = None
        self._closed = True

    def abort(self) -> None:
        """Discard the write: close without ever touching the destination.

        Only meaningful for path targets (caller-owned handles are left
        to the caller).  Idempotent; a no-op after :meth:`close`.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_fh:
            self._fh.close()
            if self._tmp_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self._tmp_path)
                self._tmp_path = None

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        # A clean exit publishes; an exception inside the block must not
        # leave a valid-looking but incomplete trace at the destination.
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_columnar(
    path: str,
    records: typing.Iterable[TraceRecord],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> int:
    """Write ``records`` to ``path`` in columnar form; returns the count."""
    count = 0
    with ColumnarTraceWriter(path, chunk_records=chunk_records) as writer:
        for record in records:
            writer.write(record)
            count += 1
    return count


# ---------------------------------------------------------------------- #
# reading


def read_footer(
    path: str, verify_digest: bool = True
) -> Footer:
    """Parse (and by default integrity-check) the footer of ``path``.

    Raises:
        ColumnarFormatError: on anything that is not a complete,
            untampered columnar trace file — wrong magic, truncated
            tail, digest mismatch, unknown schema, or a field layout
            that no longer matches the current record definitions.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise ColumnarFormatError(f"cannot read columnar trace {path!r}: {exc}") from exc
    return _parse_footer(data, source=path, verify_digest=verify_digest)


def _parse_footer(data: bytes, source: str, verify_digest: bool = True) -> Footer:
    if len(data) < len(MAGIC) + _TAIL_LEN:
        raise ColumnarFormatError(
            f"{source}: file is {len(data)} bytes, smaller than an empty "
            "columnar trace; it was truncated"
        )
    if data[: len(MAGIC)] != MAGIC:
        raise ColumnarFormatError(
            f"{source}: bad magic {data[:8]!r}; not a columnar trace file"
        )
    if data[-len(END_MAGIC):] != END_MAGIC:
        raise ColumnarFormatError(
            f"{source}: end marker missing; the file was truncated mid-write "
            "(a complete file always ends with the digest tail)"
        )
    digest_start = len(data) - len(END_MAGIC) - 32
    stored = data[digest_start : digest_start + 32]
    if verify_digest:
        actual = hashlib.sha256(data[:digest_start]).digest()
        if actual != stored:
            raise ColumnarFormatError(
                f"{source}: content digest mismatch "
                f"(stored {stored.hex()[:16]}..., computed {actual.hex()[:16]}...); "
                "the file is corrupt"
            )
    (footer_offset,) = struct.unpack(">Q", data[digest_start - 8 : digest_start])
    if not len(MAGIC) <= footer_offset <= digest_start - 8:
        raise ColumnarFormatError(
            f"{source}: footer offset {footer_offset} is outside the file; "
            "the index is corrupt"
        )
    if data[footer_offset : footer_offset + 4] != FOOTER_MAGIC:
        raise ColumnarFormatError(
            f"{source}: footer marker missing at offset {footer_offset}; "
            "the index is corrupt or truncated"
        )
    (footer_len,) = struct.unpack(
        ">I", data[footer_offset + 4 : footer_offset + 8]
    )
    blob = data[footer_offset + 8 : footer_offset + 8 + footer_len]
    if len(blob) != footer_len:
        raise ColumnarFormatError(f"{source}: footer payload truncated")
    try:
        payload = json.loads(zlib.decompress(blob).decode("utf-8"))
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ColumnarFormatError(f"{source}: footer is unreadable ({exc})") from exc
    schema = payload.get("schema")
    if schema != COLUMNAR_SCHEMA:
        raise ColumnarFormatError(
            f"{source}: unknown columnar schema {schema!r}; "
            f"this reader understands {COLUMNAR_SCHEMA!r}"
        )
    fields = payload.get("fields", {})
    for kind, names in fields.items():
        expected = KIND_FIELDS.get(kind)
        if expected is None:
            raise ColumnarFormatError(
                f"{source}: file contains unknown record kind {kind!r}"
            )
        if list(names) != expected:
            raise ColumnarFormatError(
                f"{source}: field layout for {kind!r} is {names}, but this "
                f"schema expects {expected}; the file was written by an "
                "incompatible record schema"
            )
    return Footer(
        schema=schema,
        n_records=payload.get("n_records", 0),
        kind_counts=dict(payload.get("kind_counts", {})),
        fields={k: list(v) for k, v in fields.items()},
        chunks=[ChunkInfo.from_dict(c) for c in payload.get("chunks", [])],
    )


def _decode_chunk(
    blob: bytes, source: str
) -> typing.Iterator[TraceRecord]:
    try:
        payload = json.loads(zlib.decompress(blob).decode("utf-8"))
        kind_table = payload["kind_table"]
        order = payload["order"]
        columns = payload["columns"]
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError, KeyError) as exc:
        raise ColumnarFormatError(f"{source}: chunk is unreadable ({exc})") from exc
    cursors = {kind: 0 for kind in kind_table}
    for index in order:
        try:
            kind = kind_table[index]
        except (IndexError, TypeError) as exc:
            raise ColumnarFormatError(
                f"{source}: chunk order references kind #{index!r} outside "
                f"its kind table"
            ) from exc
        row_index = cursors[kind]
        cursors[kind] = row_index + 1
        kind_columns = columns[kind]
        row: typing.Dict[str, typing.Any] = {"kind": kind}
        try:
            for name in KIND_FIELDS[kind]:
                row[name] = kind_columns[name][row_index]
        except (KeyError, IndexError) as exc:
            raise ColumnarFormatError(
                f"{source}: chunk columns for {kind!r} are ragged ({exc})"
            ) from exc
        try:
            yield record_from_dict(row)
        except ValueError as exc:
            raise ColumnarFormatError(f"{source}: {exc}") from exc


def iter_columnar(
    path: str,
    kinds: typing.Optional[typing.Collection[str]] = None,
    time_range: typing.Optional[typing.Tuple[float, float]] = None,
    verify_digest: bool = True,
) -> typing.Iterator[TraceRecord]:
    """Stream records from ``path``, one decompressed chunk at a time.

    ``kinds`` and ``time_range`` use the footer index to *skip* chunks
    containing no matching record before any decompression happens, then
    filter within the surviving chunks — the O(index) selective-read path.
    Filters preserve stream order.

    Raises:
        ColumnarFormatError: see :func:`read_footer`; also on chunks
            whose framing or columns are damaged.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise ColumnarFormatError(f"cannot read columnar trace {path!r}: {exc}") from exc
    footer = _parse_footer(data, source=path, verify_digest=verify_digest)
    wanted = set(kinds) if kinds is not None else None
    for info in footer.chunks:
        if wanted is not None and not any(
            kind in wanted for kind in info.kind_counts
        ):
            continue
        if time_range is not None and (
            info.time_max < time_range[0] or info.time_min > time_range[1]
        ):
            continue
        head = data[info.offset : info.offset + 4]
        if head != CHUNK_MAGIC:
            raise ColumnarFormatError(
                f"{path}: chunk marker missing at offset {info.offset}"
            )
        (length,) = struct.unpack(
            ">I", data[info.offset + 4 : info.offset + 8]
        )
        if length != info.length:
            raise ColumnarFormatError(
                f"{path}: chunk at offset {info.offset} has length {length}, "
                f"footer index says {info.length}"
            )
        blob = data[info.offset + 8 : info.offset + 8 + length]
        for record in _decode_chunk(blob, source=path):
            if wanted is not None and record.kind not in wanted:
                continue
            if time_range is not None and not (
                time_range[0] <= record.time <= time_range[1]
            ):
                continue
            yield record


def read_columnar(
    path: str,
    kinds: typing.Optional[typing.Collection[str]] = None,
    time_range: typing.Optional[typing.Tuple[float, float]] = None,
    verify_digest: bool = True,
) -> typing.List[TraceRecord]:
    """:func:`iter_columnar` materialized into a list (small reads only)."""
    return list(
        iter_columnar(
            path, kinds=kinds, time_range=time_range, verify_digest=verify_digest
        )
    )


def columnar_to_bytes(
    records: typing.Iterable[TraceRecord],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> bytes:
    """The columnar encoding of ``records`` as in-memory bytes (tests)."""
    buffer = io.BytesIO()
    with ColumnarTraceWriter(buffer, chunk_records=chunk_records) as writer:
        for record in records:
            writer.write(record)
    return buffer.getvalue()
