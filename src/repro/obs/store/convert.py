"""Lossless, streaming conversion between JSONL and columnar traces.

Both directions are record-at-a-time: neither the JSONL lines nor the
decoded columnar records are ever materialized as a whole-trace list, so
converting a million-job sweep trace needs memory proportional to one
chunk, not one run.  The JSONL emitted by :func:`columnar_to_jsonl` uses
the exact serialization the Tracer's own exporter uses (key-sorted
``json.dumps``, one record per line, newline terminated), which is what
makes ``jsonl -> columnar -> jsonl`` byte-identical.
"""

from __future__ import annotations

import json
import typing

from repro import ioutil
from repro.obs.records import TraceRecord, record_from_dict, record_to_dict
from repro.obs.store.format import (
    DEFAULT_CHUNK_RECORDS,
    MAGIC,
    ColumnarFormatError,
    ColumnarTraceWriter,
    iter_columnar,
)

#: Recognised trace container formats.
FORMATS = ("jsonl", "columnar")


def sniff_format(path: str) -> str:
    """Identify a trace file as ``"jsonl"`` or ``"columnar"`` by content.

    Columnar files start with the 8-byte magic; JSONL traces start with
    ``{`` (every record line is a JSON object).  Anything else is
    rejected rather than guessed.
    """
    try:
        with open(path, "rb") as fh:
            head = fh.read(len(MAGIC))
    except OSError as exc:
        raise ColumnarFormatError(f"cannot read trace {path!r}: {exc}") from exc
    if head == MAGIC:
        return "columnar"
    if head[:1] == b"{":
        return "jsonl"
    if not head:
        # An empty JSONL trace is legal output of trace_to_jsonl([]).
        return "jsonl"
    raise ColumnarFormatError(
        f"{path}: unrecognized trace format (starts {head!r}); "
        "expected a JSONL trace or a columnar trace file"
    )


def iter_jsonl_records(path: str) -> typing.Iterator[TraceRecord]:
    """Stream typed records from a JSONL trace file, line by line.

    Enforces the same truncation discipline as the batch loader: a final
    line without a newline terminator means the artifact was cut off
    mid-record and the whole stream is refused (the error is raised
    before any record from the damaged tail is yielded, but records from
    earlier complete lines may already have been consumed — callers that
    need all-or-nothing semantics should drain to a list).

    Raises:
        ColumnarFormatError: on unreadable files, malformed lines, or a
            truncated tail.  (A :class:`ValueError` subclass, so callers
            catching the exporter's ``TraceStreamError`` family still
            work after wrapping.)
    """
    try:
        fh = open(path, "r", encoding="utf-8", newline="")
    except OSError as exc:
        raise ColumnarFormatError(f"cannot read trace {path!r}: {exc}") from exc
    with fh:
        lineno = 0
        for lineno, line in enumerate(fh, start=1):
            if not line.endswith("\n"):
                raise ColumnarFormatError(
                    f"{path}: trace is truncated: final line has no newline "
                    f"terminator (starts {line[:60]!r}); the artifact was "
                    "cut off mid-record"
                )
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ColumnarFormatError(
                    f"{path}: trace line {lineno} is not valid JSON ({exc}); "
                    "the artifact is corrupt or was truncated mid-record"
                ) from exc
            try:
                yield record_from_dict(payload)
            except ValueError as exc:
                raise ColumnarFormatError(
                    f"{path}: trace line {lineno}: {exc}"
                ) from exc


def iter_trace_file(
    path: str, fmt: typing.Optional[str] = None
) -> typing.Iterator[TraceRecord]:
    """Stream records from ``path`` in either format (sniffed by default)."""
    if fmt is None:
        fmt = sniff_format(path)
    if fmt == "jsonl":
        return iter_jsonl_records(path)
    if fmt == "columnar":
        return iter_columnar(path)
    raise ValueError(f"unknown trace format {fmt!r}; expected one of {FORMATS}")


def jsonl_to_columnar(
    src: str, dst: str, chunk_records: int = DEFAULT_CHUNK_RECORDS
) -> int:
    """Convert a JSONL trace file to columnar; returns the record count."""
    count = 0
    with ColumnarTraceWriter(dst, chunk_records=chunk_records) as writer:
        for record in iter_jsonl_records(src):
            writer.write(record)
            count += 1
    return count


def columnar_to_jsonl(src: str, dst: str) -> int:
    """Convert a columnar trace file to JSONL; returns the record count.

    The output is byte-identical to what the original Tracer's JSONL
    export produced for the same record stream.  The write is atomic: a
    crash mid-conversion leaves ``dst`` untouched rather than truncated.
    """
    count = 0
    with ioutil.atomic_open(dst, "w") as fh:
        for record in iter_columnar(src):
            fh.write(json.dumps(record_to_dict(record), sort_keys=True))
            fh.write("\n")
            count += 1
    return count
