"""Columnar trace store: compact, indexed, integrity-checked containers.

The JSONL trace path materializes full record lists; this package is the
fleet-scale alternative — chunked column-transposed storage with a
footer index for selective reads, a content digest for integrity, and
lossless streaming conversion back to JSONL (see ``format`` and
``convert``; ``docs/observability.md`` documents the byte layout).
"""

from repro.obs.store.convert import (
    FORMATS,
    columnar_to_jsonl,
    iter_jsonl_records,
    iter_trace_file,
    jsonl_to_columnar,
    sniff_format,
)
from repro.obs.store.format import (
    COLUMNAR_SCHEMA,
    DEFAULT_CHUNK_RECORDS,
    ChunkInfo,
    ColumnarFormatError,
    ColumnarTraceWriter,
    Footer,
    columnar_to_bytes,
    iter_columnar,
    read_columnar,
    read_footer,
    write_columnar,
)

__all__ = [
    "COLUMNAR_SCHEMA",
    "DEFAULT_CHUNK_RECORDS",
    "FORMATS",
    "ChunkInfo",
    "ColumnarFormatError",
    "ColumnarTraceWriter",
    "Footer",
    "columnar_to_bytes",
    "columnar_to_jsonl",
    "iter_columnar",
    "iter_jsonl_records",
    "iter_trace_file",
    "jsonl_to_columnar",
    "read_columnar",
    "read_footer",
    "sniff_format",
    "write_columnar",
]
