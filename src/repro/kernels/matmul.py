"""Cache-blocked matrix multiplication.

The paper's MATRIX application "uses a 'blocked' algorithm designed to
improve performance by exploiting cache locality [Fox et al. 88, Lam et
al. 91].  Each thread of the computation is assigned a square block of
elements of the output matrix ... The block sizes are chosen as large as
possible under the constraint that the currently used blocks fit in the
processor's cache."

Matrices are plain lists of row lists (no numpy dependency in the core
library); the functions validate shapes and work for any rectangular
conforming operands.
"""

from __future__ import annotations

import typing

Matrix = typing.List[typing.List[float]]


def _dims(matrix: Matrix, name: str) -> typing.Tuple[int, int]:
    if not matrix or not matrix[0]:
        raise ValueError(f"{name} must be non-empty")
    cols = len(matrix[0])
    if any(len(row) != cols for row in matrix):
        raise ValueError(f"{name} has ragged rows")
    return len(matrix), cols


def choose_block_size(
    cache_bytes: int, element_bytes: int = 8, working_blocks: int = 3
) -> int:
    """Largest square block edge such that ``working_blocks`` blocks fit.

    During a block multiply three blocks are live (one of each of A, B and
    the C accumulator), so with a 64-Kbyte cache and 8-byte elements the
    edge is ``sqrt(65536 / (3 * 8)) = 52``.
    """
    if cache_bytes <= 0 or element_bytes <= 0 or working_blocks <= 0:
        raise ValueError("all sizes must be positive")
    edge = int((cache_bytes / (working_blocks * element_bytes)) ** 0.5)
    return max(1, edge)


def naive_matmul(a: Matrix, b: Matrix) -> Matrix:
    """Straightforward triple loop, used as ground truth in tests."""
    n, inner_a = _dims(a, "a")
    inner_b, m = _dims(b, "b")
    if inner_a != inner_b:
        raise ValueError(f"shape mismatch: {n}x{inner_a} times {inner_b}x{m}")
    out = [[0.0] * m for _ in range(n)]
    for i in range(n):
        row_a = a[i]
        row_out = out[i]
        for k in range(inner_a):
            aik = row_a[k]
            row_b = b[k]
            for j in range(m):
                row_out[j] += aik * row_b[j]
    return out


def blocked_matmul(a: Matrix, b: Matrix, block: int = 52) -> Matrix:
    """Blocked multiply: per-output-block accumulation over block pairs.

    This is the MATRIX application's algorithm: the iteration over output
    blocks is the flat fan of independent threads (one per block), and
    ``block`` bounds the live working set so it stays cache resident.
    """
    if block < 1:
        raise ValueError("block must be at least 1")
    n, inner_a = _dims(a, "a")
    inner_b, m = _dims(b, "b")
    if inner_a != inner_b:
        raise ValueError(f"shape mismatch: {n}x{inner_a} times {inner_b}x{m}")
    out = [[0.0] * m for _ in range(n)]
    for ii in range(0, n, block):
        i_end = min(ii + block, n)
        for jj in range(0, m, block):
            j_end = min(jj + block, m)
            # One "thread" of the MATRIX application: output block (ii, jj).
            for kk in range(0, inner_a, block):
                k_end = min(kk + block, inner_a)
                for i in range(ii, i_end):
                    row_a = a[i]
                    row_out = out[i]
                    for k in range(kk, k_end):
                        aik = row_a[k]
                        row_b = b[k]
                        for j in range(jj, j_end):
                            row_out[j] += aik * row_b[j]
    return out


def output_blocks(n: int, m: int, block: int) -> typing.List[typing.Tuple[int, int]]:
    """The (row, col) origins of the independent output blocks.

    One entry per thread of the MATRIX application model.
    """
    if block < 1:
        raise ValueError("block must be at least 1")
    return [(i, j) for i in range(0, n, block) for j in range(0, m, block)]
