"""Real implementations of the computations the applications model.

The scheduling experiments use workload *models* of MVA, MATRIX and
GRAVITY (thread graphs plus reference streams).  This package contains the
actual computations those models abstract:

* :mod:`~repro.kernels.mva_solver` — exact Mean Value Analysis for closed
  product-form queueing networks (the wavefront dynamic program);
* :mod:`~repro.kernels.matmul` — cache-blocked matrix multiplication;
* :mod:`~repro.kernels.barnes_hut` — a 2-D Barnes-Hut quadtree N-body
  simulator.

They serve as runnable examples, as ground truth for the thread-graph
shapes (the wavefront dependency structure, the flat block fan, the
five-phase time step), and as ordinary useful library code.
"""

from repro.kernels.barnes_hut import Body, BarnesHutSimulation, QuadTree
from repro.kernels.matmul import blocked_matmul, choose_block_size, naive_matmul
from repro.kernels.mva_solver import MvaResult, QueueingNetwork, solve_mva, wavefront_order

__all__ = [
    "BarnesHutSimulation",
    "Body",
    "MvaResult",
    "QuadTree",
    "QueueingNetwork",
    "blocked_matmul",
    "choose_block_size",
    "naive_matmul",
    "solve_mva",
    "wavefront_order",
]
