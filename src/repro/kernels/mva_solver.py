"""Exact Mean Value Analysis for closed product-form queueing networks.

This is the computation behind the paper's MVA application: a dynamic
program over (population x stations) whose cell ``(n, k)`` depends on row
``n-1`` — parallelizable across stations within a population level, giving
the wavefront precedence structure of Figure 2.

The algorithm (Reiser & Lavenberg): for population ``n`` from 1 to N::

    R_k(n) = D_k * (1 + Q_k(n-1))      queueing stations
    R_k(n) = D_k                        delay stations
    X(n)   = n / sum_k R_k(n)
    Q_k(n) = X(n) * R_k(n)

where ``D_k`` is station ``k``'s service demand, ``R`` residence time,
``X`` system throughput and ``Q`` mean queue length.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class QueueingNetwork:
    """A closed queueing network: per-station service demands.

    Attributes:
        demands: service demand (seconds per visit-weighted job) per station.
        delay_stations: indices of pure-delay (infinite-server) stations.
    """

    demands: typing.Tuple[float, ...]
    delay_stations: typing.FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if not self.demands:
            raise ValueError("network needs at least one station")
        if any(d < 0 for d in self.demands):
            raise ValueError("service demands must be non-negative")
        bad = [k for k in self.delay_stations if not 0 <= k < len(self.demands)]
        if bad:
            raise ValueError(f"delay station indices out of range: {bad}")

    @property
    def n_stations(self) -> int:
        """Number of service stations."""
        return len(self.demands)


@dataclasses.dataclass(frozen=True)
class MvaResult:
    """Solution of an exact MVA run at a given population."""

    population: int
    throughput: float
    response_time: float
    queue_lengths: typing.Tuple[float, ...]
    utilizations: typing.Tuple[float, ...]

    def bottleneck(self) -> int:
        """Index of the highest-utilization station."""
        return max(range(len(self.utilizations)), key=self.utilizations.__getitem__)


def solve_mva(
    network: QueueingNetwork, population: int
) -> typing.List[MvaResult]:
    """Exact MVA: results for every population 1..``population``.

    Raises:
        ValueError: for a non-positive population.
    """
    if population < 1:
        raise ValueError("population must be at least 1")
    results: typing.List[MvaResult] = []
    queues = [0.0] * network.n_stations
    for n in range(1, population + 1):
        residences = []
        for k, demand in enumerate(network.demands):
            if k in network.delay_stations:
                residences.append(demand)
            else:
                residences.append(demand * (1.0 + queues[k]))
        total = sum(residences)
        throughput = n / total if total > 0 else 0.0
        queues = [throughput * r for r in residences]
        utilizations = tuple(
            min(1.0, throughput * d) if k not in network.delay_stations else 0.0
            for k, d in enumerate(network.demands)
        )
        results.append(
            MvaResult(
                population=n,
                throughput=throughput,
                response_time=total,
                queue_lengths=tuple(queues),
                utilizations=utilizations,
            )
        )
    return results


def wavefront_order(
    population: int, n_stations: int
) -> typing.List[typing.List[typing.Tuple[int, int]]]:
    """The parallel evaluation order of the MVA dynamic program.

    Returns the anti-diagonals of the (population x stations) grid: all
    cells in one wave may be computed concurrently, each wave depending
    only on earlier waves.  This is the thread dependence structure the
    MVA application model encodes (Figure 2): wave width first slowly
    grows to ``min(population, n_stations)`` and then slowly shrinks.
    """
    if population < 1 or n_stations < 1:
        raise ValueError("grid must be at least 1x1")
    waves: typing.List[typing.List[typing.Tuple[int, int]]] = []
    for wave in range(population + n_stations - 1):
        cells = [
            (n, wave - n)
            for n in range(max(0, wave - n_stations + 1), min(population, wave + 1))
        ]
        waves.append(cells)
    return waves
