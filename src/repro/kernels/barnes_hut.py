"""A 2-D Barnes-Hut N-body simulator.

The paper's GRAVITY application "implements the Barnes and Hut clustering
algorithm for simulating the gravitational interaction of a large number
of stars over time [Barnes & Hut 86].  This application repeats five
phases of execution for each time step of the simulation, the first being
sequential and the remaining four parallel."

This module implements the real algorithm with the same five-phase
structure per step:

1. **tree build** (sequential) — insert all bodies into a fresh quadtree;
2. **summarize** — compute centers of mass bottom-up (done during build
   finalization, exposed as its own phase);
3. **force** — per-body tree walk with the theta opening criterion;
4. **update** — leapfrog integration of velocities and positions;
5. **collect** — bounding box and diagnostics for the next step.

Phases 2-5 are embarrassingly parallel across bodies/nodes; the class
exposes them separately so callers can see (and parallelize) the
structure the scheduling model encodes.
"""

from __future__ import annotations

import dataclasses
import math
import typing

#: Gravitational constant (natural units; tests use G = 1).
DEFAULT_G = 1.0
#: Softening length avoiding singular forces at tiny separations.
DEFAULT_SOFTENING = 1e-3


@dataclasses.dataclass
class Body:
    """A point mass with position and velocity."""

    x: float
    y: float
    vx: float = 0.0
    vy: float = 0.0
    mass: float = 1.0

    def kinetic_energy(self) -> float:
        """(1/2) m v^2."""
        return 0.5 * self.mass * (self.vx * self.vx + self.vy * self.vy)


class _Node:
    """One square region of the quadtree."""

    __slots__ = ("cx", "cy", "half", "body", "children", "mass", "com_x", "com_y")

    def __init__(self, cx: float, cy: float, half: float) -> None:
        self.cx = cx
        self.cy = cy
        self.half = half
        self.body: typing.Optional[Body] = None
        self.children: typing.Optional[typing.List[typing.Optional["_Node"]]] = None
        self.mass = 0.0
        self.com_x = 0.0
        self.com_y = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def _quadrant(self, x: float, y: float) -> int:
        return (1 if x >= self.cx else 0) | (2 if y >= self.cy else 0)

    def insert(self, body: Body, depth: int = 0) -> None:
        if self.is_leaf:
            if self.body is None:
                self.body = body
                return
            if depth > 64:
                # Coincident points: merge into a single effective mass by
                # keeping both in this leaf's aggregate only.
                self.mass += body.mass
                self.com_x += body.mass * body.x
                self.com_y += body.mass * body.y
                return
            old, self.body = self.body, None
            self.children = [None, None, None, None]
            self._insert_child(old, depth)
        assert self.children is not None
        self._insert_child(body, depth)

    def _insert_child(self, body: Body, depth: int) -> None:
        assert self.children is not None
        quadrant = self._quadrant(body.x, body.y)
        child = self.children[quadrant]
        if child is None:
            quarter = self.half / 2.0
            cx = self.cx + (quarter if quadrant & 1 else -quarter)
            cy = self.cy + (quarter if quadrant & 2 else -quarter)
            child = _Node(cx, cy, quarter)
            self.children[quadrant] = child
        child.insert(body, depth + 1)

    def summarize(self) -> None:
        """Bottom-up centers of mass (the parallel 'summarize' phase)."""
        if self.is_leaf:
            if self.body is not None:
                self.mass += self.body.mass
                self.com_x += self.body.mass * self.body.x
                self.com_y += self.body.mass * self.body.y
            if self.mass > 0:
                self.com_x /= self.mass
                self.com_y /= self.mass
            return
        assert self.children is not None
        for child in self.children:
            if child is not None:
                child.summarize()
                self.mass += child.mass
                self.com_x += child.mass * child.com_x
                self.com_y += child.mass * child.com_y
        if self.mass > 0:
            self.com_x /= self.mass
            self.com_y /= self.mass


class QuadTree:
    """Barnes-Hut quadtree over a set of bodies."""

    def __init__(self, bodies: typing.Sequence[Body]) -> None:
        if not bodies:
            raise ValueError("need at least one body")
        xs = [b.x for b in bodies]
        ys = [b.y for b in bodies]
        cx = (min(xs) + max(xs)) / 2.0
        cy = (min(ys) + max(ys)) / 2.0
        half = max(max(xs) - min(xs), max(ys) - min(ys)) / 2.0 + 1e-9
        self.root = _Node(cx, cy, half)
        for body in bodies:
            self.root.insert(body)
        self.root.summarize()

    def force_on(
        self,
        body: Body,
        theta: float = 0.5,
        g: float = DEFAULT_G,
        softening: float = DEFAULT_SOFTENING,
    ) -> typing.Tuple[float, float]:
        """Approximate gravitational force on ``body`` via the theta test."""
        if theta <= 0:
            raise ValueError("theta must be positive")
        fx = fy = 0.0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mass == 0.0:
                continue
            dx = node.com_x - body.x
            dy = node.com_y - body.y
            dist_sq = dx * dx + dy * dy + softening * softening
            dist = math.sqrt(dist_sq)
            if node.is_leaf or (2.0 * node.half) / dist < theta:
                if node.is_leaf and node.body is body:
                    continue
                strength = g * body.mass * node.mass / dist_sq
                fx += strength * dx / dist
                fy += strength * dy / dist
            else:
                assert node.children is not None
                stack.extend(c for c in node.children if c is not None)
        return fx, fy

    def total_mass(self) -> float:
        """Mass aggregated at the root (sum of all bodies)."""
        return self.root.mass


class BarnesHutSimulation:
    """Five-phase time stepping over a body set."""

    def __init__(
        self,
        bodies: typing.Sequence[Body],
        dt: float = 0.01,
        theta: float = 0.5,
        g: float = DEFAULT_G,
        softening: float = DEFAULT_SOFTENING,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.bodies = list(bodies)
        self.dt = dt
        self.theta = theta
        self.g = g
        self.softening = softening
        self.steps_run = 0
        self.tree: typing.Optional[QuadTree] = None

    # Phases, exposed individually (GRAVITY's five-phase step structure):

    def phase_build_tree(self) -> QuadTree:
        """Phase 1 (sequential): build a fresh quadtree."""
        self.tree = QuadTree(self.bodies)
        return self.tree

    def phase_forces(self) -> typing.List[typing.Tuple[float, float]]:
        """Phase 3 (parallel across bodies): tree-walk forces."""
        if self.tree is None:
            raise RuntimeError("build the tree first")
        return [
            self.tree.force_on(b, self.theta, self.g, self.softening)
            for b in self.bodies
        ]

    def phase_update(self, forces: typing.Sequence[typing.Tuple[float, float]]) -> None:
        """Phase 4 (parallel across bodies): leapfrog integration."""
        if len(forces) != len(self.bodies):
            raise ValueError("one force per body required")
        for body, (fx, fy) in zip(self.bodies, forces):
            body.vx += fx / body.mass * self.dt
            body.vy += fy / body.mass * self.dt
            body.x += body.vx * self.dt
            body.y += body.vy * self.dt

    def phase_collect(self) -> typing.Tuple[float, float, float, float]:
        """Phase 5 (parallel reduction): bounding box for the next step."""
        xs = [b.x for b in self.bodies]
        ys = [b.y for b in self.bodies]
        return (min(xs), min(ys), max(xs), max(ys))

    def step(self) -> typing.Tuple[float, float, float, float]:
        """One full time step; returns the post-step bounding box."""
        self.phase_build_tree()
        forces = self.phase_forces()
        self.phase_update(forces)
        self.steps_run += 1
        return self.phase_collect()

    def run(self, n_steps: int) -> None:
        """Advance the simulation ``n_steps`` steps."""
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        for _ in range(n_steps):
            self.step()

    def total_momentum(self) -> typing.Tuple[float, float]:
        """Sum of m*v (approximately conserved by symmetric forces)."""
        px = sum(b.mass * b.vx for b in self.bodies)
        py = sum(b.mass * b.vy for b in self.bodies)
        return px, py
