"""Stochastic arrival processes for open-system scenarios.

Each process turns a seeded :class:`random.Random` stream into a sorted
list of arrival times over a horizon.  Two properties are contractual:

* **Determinism** — the times are a pure function of the rng stream and
  the horizon; scenario instantiation draws from a named
  :class:`~repro.engine.rng.RngRegistry` substream, so serial and
  parallel sweeps see identical workloads.
* **Prefix stability** — draws are strictly sequential with no
  look-ahead, so ``times(rng, h1)`` is a prefix of ``times(rng', h2)``
  for ``h1 <= h2`` (same seed).  This is what makes horizon extension
  and arrival-list chunking bit-compatible, and the property tests
  enforce it.

The utilization targeting follows the open-queue identity the Narrator
generator uses (``rate = utilization x servers / mean service``): the
offered load of a Poisson stream of jobs with mean total work ``W`` on
``P`` processors is ``rate x W / P``.
"""

from __future__ import annotations

import abc
import dataclasses
import math
import random
import typing


class ArrivalProcess(abc.ABC):
    """A recipe for drawing job arrival times from an rng stream."""

    @abc.abstractmethod
    def times(self, rng: random.Random, horizon_s: float) -> typing.List[float]:
        """Arrival times in ``[0, horizon_s)``, strictly increasing."""

    @staticmethod
    def _check_horizon(horizon_s: float) -> None:
        if not horizon_s > 0 or math.isinf(horizon_s):
            raise ValueError("horizon must be positive and finite")


@dataclasses.dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant ``rate_per_s``."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")

    @classmethod
    def for_utilization(
        cls, target: float, mean_work_s: float, n_processors: int
    ) -> "PoissonArrivals":
        """Rate that offers ``target`` utilization of ``n_processors``.

        ``target`` is the offered load fraction (0, 1]; ``mean_work_s``
        the mean *total* processor-seconds per job.
        """
        if not 0 < target <= 1:
            raise ValueError("target utilization must be in (0, 1]")
        if mean_work_s <= 0 or n_processors <= 0:
            raise ValueError("mean work and processor count must be positive")
        return cls(rate_per_s=target * n_processors / mean_work_s)

    def times(self, rng: random.Random, horizon_s: float) -> typing.List[float]:
        self._check_horizon(horizon_s)
        out: typing.List[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(self.rate_per_s)
            if t >= horizon_s:
                return out
            out.append(t)


@dataclasses.dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson arrivals (a two-state MMPP).

    The process alternates between a *burst* state arriving at
    ``burst_rate_per_s`` and an *idle* state at ``idle_rate_per_s``
    (0 allowed); state residence times are exponential with the given
    means.  Thanks to memorylessness, the inter-arrival clock restarts
    cleanly at each state boundary.
    """

    burst_rate_per_s: float
    idle_rate_per_s: float
    mean_burst_s: float
    mean_idle_s: float

    def __post_init__(self) -> None:
        if self.burst_rate_per_s <= 0:
            raise ValueError("burst rate must be positive")
        if self.idle_rate_per_s < 0:
            raise ValueError("idle rate must be non-negative")
        if self.mean_burst_s <= 0 or self.mean_idle_s <= 0:
            raise ValueError("state residence means must be positive")

    def mean_rate_per_s(self) -> float:
        """Long-run average arrival rate of the modulated process."""
        total = self.mean_burst_s + self.mean_idle_s
        return (
            self.burst_rate_per_s * self.mean_burst_s
            + self.idle_rate_per_s * self.mean_idle_s
        ) / total

    def times(self, rng: random.Random, horizon_s: float) -> typing.List[float]:
        self._check_horizon(horizon_s)
        out: typing.List[float] = []
        t = 0.0
        in_burst = True
        seg_end = rng.expovariate(1.0 / self.mean_burst_s)
        while t < horizon_s:
            rate = self.burst_rate_per_s if in_burst else self.idle_rate_per_s
            dt = rng.expovariate(rate) if rate > 0 else math.inf
            if t + dt >= seg_end:
                t = seg_end
                in_burst = not in_burst
                mean = self.mean_burst_s if in_burst else self.mean_idle_s
                seg_end = t + rng.expovariate(1.0 / mean)
                continue
            t += dt
            if t >= horizon_s:
                break
            out.append(t)
        return out


@dataclasses.dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal rate curve, sampled by thinning.

    ``rate(t) = base_rate_per_s * (1 + amplitude * sin(2 pi t / period_s))``.
    Candidates are drawn at the peak rate and accepted with probability
    ``rate(t) / peak`` — the standard thinning construction for an
    inhomogeneous Poisson process, which keeps draws sequential (so the
    prefix property holds).
    """

    base_rate_per_s: float
    amplitude: float
    period_s: float

    def __post_init__(self) -> None:
        if self.base_rate_per_s <= 0:
            raise ValueError("base rate must be positive")
        if not 0 <= self.amplitude <= 1:
            raise ValueError("amplitude must be in [0, 1]")
        if self.period_s <= 0:
            raise ValueError("period must be positive")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        return self.base_rate_per_s * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period_s)
        )

    def times(self, rng: random.Random, horizon_s: float) -> typing.List[float]:
        self._check_horizon(horizon_s)
        peak = self.base_rate_per_s * (1.0 + self.amplitude)
        out: typing.List[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= horizon_s:
                return out
            if rng.random() * peak <= self.rate_at(t):
                out.append(t)
