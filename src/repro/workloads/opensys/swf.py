"""Standard Workload Format (SWF) ingestion.

SWF is the archive format of real cluster traces
(https://www.cs.huji.ac.il/labs/parallel/workload/): one job per line,
18 whitespace-separated numeric fields, ``;`` comment lines.  We consume
the fields the simulator can honor:

===== ======================= ==========================================
field SWF name                mapped to
===== ======================= ==========================================
1     job number              job identity (``SWF-<id>``)
2     submit time (s)         arrival time (normalized to first = 0)
4     run time (s)            per-thread service time
5     allocated processors    thread/worker count (field 8, *requested*,
                              is the fallback when allocation is -1)
11    status                  1 = completed; 0/5 = killed/cancelled,
                              replayed as a mid-run cancellation
===== ======================= ==========================================

Parsing is strict where silence would corrupt an experiment: negative
runtimes, out-of-order submit times, truncated or non-numeric lines all
raise :class:`SwfFormatError` carrying the 1-based line number.  (Real
archives use ``-1`` for *unknown* runtimes; an unknown runtime cannot be
simulated, so it is an error here rather than a silent skip.)

:class:`SwfScenario` adapts a parsed trace to the scenario interface:
each job becomes a flat graph of ``p`` threads of the scaled runtime run
by ``p`` workers (a rigid job — exactly how SWF jobs held their
processors), and killed/cancelled jobs (status 0/5) get a cancellation
event halfway through their recorded runtime.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.machine.footprint import FootprintCurve
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job

#: SWF prescribes exactly 18 fields per job line.
N_FIELDS = 18

#: SWF status codes replayed as cancellations (0 = failed, 5 = cancelled).
CANCELLED_STATUSES = (0, 5)

#: Working-set law for replayed jobs: SWF records carry no cache
#: information, so every job gets a moderate footprint (a few thousand
#: lines, built within a second) — enough for affinity to matter without
#: dominating the replay.
SWF_CURVE = FootprintCurve(w_max=4000.0, tau=0.5)


class SwfFormatError(ValueError):
    """A malformed SWF line, with its source and 1-based line number."""

    def __init__(self, source: str, line_no: int, message: str) -> None:
        self.source = source
        self.line_no = line_no
        super().__init__(f"{source}:{line_no}: {message}")


@dataclasses.dataclass(frozen=True)
class SwfJob:
    """One parsed SWF job record (times in trace seconds)."""

    job_id: int
    submit_s: float
    run_s: float
    n_procs: int
    status: int
    line_no: int


def parse_swf(text: str, source: str = "<swf>") -> typing.List[SwfJob]:
    """Parse SWF ``text`` into job records.

    Raises:
        SwfFormatError: on truncated lines, non-numeric fields, negative
            submit/run times, missing processor counts, duplicate job
            ids, or submit times that go backwards.
    """
    jobs: typing.List[SwfJob] = []
    seen_ids: typing.Set[int] = set()
    last_submit: typing.Optional[float] = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < N_FIELDS:
            raise SwfFormatError(
                source,
                line_no,
                f"truncated record: expected {N_FIELDS} fields, got {len(fields)}",
            )
        try:
            values = [float(field) for field in fields[:N_FIELDS]]
        except ValueError:
            raise SwfFormatError(source, line_no, f"non-numeric field in {line!r}")
        job_id = int(values[0])
        submit = values[1]
        run = values[3]
        allocated = int(values[4])
        requested = int(values[7])
        status = int(values[10])
        if submit < 0:
            raise SwfFormatError(source, line_no, f"negative submit time {submit}")
        if run < 0:
            raise SwfFormatError(
                source, line_no, f"negative runtime {run} (unknown runtimes "
                "cannot be replayed)"
            )
        if last_submit is not None and submit < last_submit:
            raise SwfFormatError(
                source,
                line_no,
                f"submit time {submit} before previous {last_submit} "
                "(SWF requires non-decreasing submit order)",
            )
        n_procs = allocated if allocated > 0 else requested
        if n_procs <= 0:
            raise SwfFormatError(
                source, line_no, "no usable processor count (fields 5 and 8 both <= 0)"
            )
        if job_id in seen_ids:
            raise SwfFormatError(source, line_no, f"duplicate job id {job_id}")
        seen_ids.add(job_id)
        last_submit = submit
        jobs.append(
            SwfJob(
                job_id=job_id,
                submit_s=submit,
                run_s=run,
                n_procs=n_procs,
                status=status,
                line_no=line_no,
            )
        )
    return jobs


def load_swf(path: str) -> typing.List[SwfJob]:
    """Parse the SWF file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_swf(handle.read(), source=path)


@dataclasses.dataclass(frozen=True)
class SwfScenario:
    """A parsed SWF trace adapted to the scenario-instantiation interface.

    ``time_scale`` divides submit times and ``work_scale`` divides
    runtimes, so hour-scale archive traces can replay in simulated
    seconds.  ``max_jobs`` truncates the trace (0 = all jobs).
    """

    name: str
    jobs: typing.Tuple[SwfJob, ...]
    time_scale: float = 1.0
    work_scale: float = 1.0
    max_jobs: int = 0

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("an SWF scenario needs at least one job")
        if self.time_scale <= 0 or self.work_scale <= 0:
            raise ValueError("time_scale and work_scale must be positive")
        if self.max_jobs < 0:
            raise ValueError("max_jobs must be non-negative")

    @classmethod
    def from_file(
        cls,
        path: str,
        time_scale: float = 1.0,
        work_scale: float = 1.0,
        max_jobs: int = 0,
    ) -> "SwfScenario":
        """Load ``path`` and wrap it as a scenario named after the file."""
        name = path.rsplit("/", 1)[-1]
        return cls(
            name=f"swf:{name}",
            jobs=tuple(load_swf(path)),
            time_scale=time_scale,
            work_scale=work_scale,
            max_jobs=max_jobs,
        )

    def instantiate(
        self,
        seed: int,
        n_processors: int = 16,
        machine: MachineSpec = SEQUENT_SYMMETRY,
    ) -> "ScenarioInstance":
        """Build the replay: jobs, arrivals, and status-derived cancellations.

        The trace is data, so ``seed`` only namespaces the instance (no
        randomness is drawn) — every seed replays the identical workload.
        """
        from repro.workloads.opensys.scenario import ScenarioInstance

        records = list(self.jobs)
        if self.max_jobs:
            records = records[: self.max_jobs]
        base = records[0].submit_s
        jobs: typing.List[Job] = []
        arrivals: typing.List[float] = []
        cancellations: typing.List[typing.Tuple[int, float]] = []
        for index, record in enumerate(records):
            arrival = (record.submit_s - base) / self.time_scale
            service = record.run_s / self.work_scale
            p = max(1, min(record.n_procs, n_processors))
            graph = ThreadGraph(f"SWF-{record.job_id}")
            for _ in range(p):
                graph.add_thread(service)
            jobs.append(
                Job(f"SWF-{record.job_id}", graph, SWF_CURVE, max_workers=p)
            )
            arrivals.append(arrival)
            if record.status in CANCELLED_STATUSES and service > 0:
                cancellations.append((index, arrival + 0.5 * service))
        return ScenarioInstance(
            name=self.name,
            seed=seed,
            jobs=tuple(jobs),
            arrival_times=tuple(arrivals),
            cancellations=tuple(cancellations),
            outages=(),
        )
