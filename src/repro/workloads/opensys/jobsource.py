"""Job sources: where an open-system scenario's jobs come from.

A :class:`JobSource` maps an arrival index to a concrete
:class:`~repro.threads.job.Job`, drawing any per-job randomness (template
choice, service jitter) from its own ``job/<index>`` substream of the
scenario's :class:`~repro.engine.rng.RngRegistry` — so the job stream is
identical no matter which policy, worker count, or chunking consumes it.

Two implementations:

* :class:`AppJobSource` samples the repo's real application specs
  (MVA / MATRIX / GRAVITY) by weight — the paper's workloads under open
  arrivals.  Real app graphs are hundreds of threads, so this is the CLI
  default but too slow for a 60-cell test matrix.
* :class:`TemplateJobSource` samples small synthetic
  :class:`JobTemplate` graphs mirroring the three application shapes
  (flat / chain / barrier-phased).  The built-in *lite* scenarios use it
  so the oracle sweep stays tier-1 fast.

Both are frozen dataclasses holding only plain values, so scenarios
pickle cleanly into the parallel runner's worker processes.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.engine.rng import RngRegistry
from repro.machine.footprint import FootprintCurve
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.threads.graph import ThreadGraph
from repro.threads.job import Job

_SHAPES = ("flat", "chain", "phased")
#: symmetric service jitter: mean stays at the template's service_s
_JITTER = 0.2


class JobSource:
    """Interface: index -> Job, plus the mean work used for load targeting."""

    def make_job(
        self,
        index: int,
        registry: RngRegistry,
        n_processors: int,
        machine: MachineSpec,
    ) -> Job:
        """Build the ``index``-th job of the stream."""
        raise NotImplementedError

    def mean_work_s(self) -> float:
        """Expected total processor-seconds per job (for utilization targets)."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class JobTemplate:
    """One synthetic job shape a :class:`TemplateJobSource` can sample.

    ``shape`` is ``flat`` (independent threads, MATRIX-like), ``chain``
    (sequential, MVA-like) or ``phased`` (barrier-separated phases,
    GRAVITY-like).  ``service_s`` is the mean per-thread service time;
    each thread is jittered uniformly within ±20 %.
    """

    name: str
    shape: str
    threads: int
    service_s: float
    workers: int
    phases: int = 1
    weight: float = 1.0
    w_max: float = 2000.0
    tau: float = 0.05

    def __post_init__(self) -> None:
        if self.shape not in _SHAPES:
            raise ValueError(f"shape must be one of {_SHAPES}, got {self.shape!r}")
        if "-" in self.name:
            raise ValueError("template names must not contain '-' (instance separator)")
        if self.threads <= 0 or self.workers <= 0 or self.phases <= 0:
            raise ValueError("threads, workers and phases must be positive")
        if self.service_s <= 0 or self.weight <= 0:
            raise ValueError("service_s and weight must be positive")

    def total_work_s(self) -> float:
        """Mean total processor-seconds of one instance."""
        n = self.threads * (self.phases if self.shape == "phased" else 1)
        return n * self.service_s

    def build(self, job_name: str, rng: random.Random, workers: int) -> Job:
        """Instantiate one jittered job from this template."""
        graph = ThreadGraph(job_name)
        jitter = lambda: self.service_s * rng.uniform(1.0 - _JITTER, 1.0 + _JITTER)
        if self.shape == "flat":
            for _ in range(self.threads):
                graph.add_thread(jitter())
        elif self.shape == "chain":
            ids = [graph.add_thread(jitter()) for _ in range(self.threads)]
            for a, b in zip(ids, ids[1:]):
                graph.add_dependency(a, b)
        else:  # phased
            previous_barrier = None
            for _ in range(self.phases):
                tids = []
                for _ in range(self.threads):
                    tid = graph.add_thread(jitter())
                    if previous_barrier is not None:
                        graph.add_dependency(previous_barrier, tid)
                    tids.append(tid)
                barrier = graph.add_thread(0.0)
                for tid in tids:
                    graph.add_dependency(tid, barrier)
                previous_barrier = barrier
        curve = FootprintCurve(w_max=self.w_max, tau=self.tau)
        return Job(job_name, graph, curve, max_workers=workers)


@dataclasses.dataclass(frozen=True)
class TemplateJobSource(JobSource):
    """Samples :class:`JobTemplate` instances by weight."""

    templates: typing.Tuple[JobTemplate, ...]

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError("need at least one template")
        names = [t.name for t in self.templates]
        if len(set(names)) != len(names):
            raise ValueError(f"template names must be unique, got {names}")

    def make_job(
        self,
        index: int,
        registry: RngRegistry,
        n_processors: int,
        machine: MachineSpec,
    ) -> Job:
        rng = registry.stream(f"job/{index}")
        weights = [t.weight for t in self.templates]
        template = rng.choices(self.templates, weights=weights, k=1)[0]
        workers = min(template.workers, n_processors)
        return template.build(f"{template.name}-{index}", rng, workers)

    def mean_work_s(self) -> float:
        total_weight = sum(t.weight for t in self.templates)
        return (
            sum(t.weight * t.total_work_s() for t in self.templates) / total_weight
        )


@dataclasses.dataclass(frozen=True)
class AppJobSource(JobSource):
    """Samples the repo's real application specs (``repro.apps``) by weight.

    Holds only app *names* so instances pickle; specs are looked up in
    :data:`repro.apps.APPLICATIONS` at build time.  ``mean_work_s`` is
    calibrated by building a few sample graphs per app with fixed seeds
    (deterministic, recomputed identically in any process).
    """

    weights: typing.Tuple[typing.Tuple[str, float], ...]
    calibration_samples: int = 3

    def __post_init__(self) -> None:
        from repro.apps import APPLICATIONS

        if not self.weights:
            raise ValueError("need at least one application")
        for name, weight in self.weights:
            if name not in APPLICATIONS:
                raise ValueError(
                    f"unknown application {name!r} (have {sorted(APPLICATIONS)})"
                )
            if weight <= 0:
                raise ValueError(f"weight for {name!r} must be positive")
        if self.calibration_samples <= 0:
            raise ValueError("calibration_samples must be positive")

    @classmethod
    def uniform(cls) -> "AppJobSource":
        """Equal weight on every registered application."""
        from repro.apps import APPLICATIONS

        return cls(weights=tuple((name, 1.0) for name in sorted(APPLICATIONS)))

    def make_job(
        self,
        index: int,
        registry: RngRegistry,
        n_processors: int,
        machine: MachineSpec,
    ) -> Job:
        from repro.apps import APPLICATIONS

        rng = registry.stream(f"job/{index}")
        names = [name for name, _ in self.weights]
        weights = [weight for _, weight in self.weights]
        spec = APPLICATIONS[rng.choices(names, weights=weights, k=1)[0]]
        return spec.make_job(
            rng, instance=index, n_processors=n_processors, machine=machine
        )

    def mean_work_s(self) -> float:
        from repro.apps import APPLICATIONS

        total_weight = sum(weight for _, weight in self.weights)
        mean = 0.0
        for name, weight in self.weights:
            spec = APPLICATIONS[name]
            works = [
                spec.build_graph(random.Random(f"calibrate/{name}/{k}")).total_work()
                for k in range(self.calibration_samples)
            ]
            mean += weight * (sum(works) / len(works))
        return mean / total_weight


def lite_source() -> TemplateJobSource:
    """The standard small synthetic mix mirroring the three app shapes."""
    return TemplateJobSource(
        templates=(
            JobTemplate(
                name="FLAT", shape="flat", threads=6, service_s=0.08, workers=4
            ),
            JobTemplate(
                name="CHAIN", shape="chain", threads=5, service_s=0.06, workers=1
            ),
            JobTemplate(
                name="PHASE",
                shape="phased",
                threads=4,
                service_s=0.05,
                workers=4,
                phases=3,
            ),
        )
    )
