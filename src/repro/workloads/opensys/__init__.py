"""Open-system workloads: stochastic arrivals, disruptions, SWF replay.

The layer that takes the simulator beyond the paper's closed mixes:

* :mod:`~repro.workloads.opensys.arrivals` — Poisson / bursty / diurnal
  arrival processes with utilization targeting;
* :mod:`~repro.workloads.opensys.jobsource` — job sampling from the real
  app specs or fast synthetic templates;
* :mod:`~repro.workloads.opensys.disruptions` — job cancellations and
  CPU failure/recovery timelines;
* :mod:`~repro.workloads.opensys.swf` — Standard Workload Format trace
  ingestion and replay;
* :mod:`~repro.workloads.opensys.scenario` — the :class:`Scenario`
  recipe, the (policy × scenario × seed) matrix runner, and the four
  built-in scenario shapes.

Everything is driven by named rng substreams and pre-sampled timelines,
so a scenario instance is a pure function of (name, seed, machine size):
identical across policies, worker counts, and backends.  Exposed on the
command line as ``repro opensys``.
"""

from repro.workloads.opensys.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workloads.opensys.disruptions import (
    CancellationProcess,
    CpuOutage,
    FailureProcess,
)
from repro.workloads.opensys.jobsource import (
    AppJobSource,
    JobSource,
    JobTemplate,
    TemplateJobSource,
    lite_source,
)
from repro.workloads.opensys.scenario import (
    CellSummary,
    MatrixComparison,
    OpenSystemResult,
    Scenario,
    ScenarioInstance,
    built_in_scenarios,
    quantile,
    run_matrix,
    run_scenario,
)
from repro.workloads.opensys.swf import (
    SwfFormatError,
    SwfJob,
    SwfScenario,
    load_swf,
    parse_swf,
)

__all__ = [
    "AppJobSource",
    "ArrivalProcess",
    "BurstyArrivals",
    "CancellationProcess",
    "CellSummary",
    "CpuOutage",
    "DiurnalArrivals",
    "FailureProcess",
    "JobSource",
    "JobTemplate",
    "MatrixComparison",
    "OpenSystemResult",
    "PoissonArrivals",
    "Scenario",
    "ScenarioInstance",
    "SwfFormatError",
    "SwfJob",
    "SwfScenario",
    "TemplateJobSource",
    "built_in_scenarios",
    "lite_source",
    "load_swf",
    "parse_swf",
    "quantile",
    "run_matrix",
    "run_scenario",
]
