"""Scenario definition and the open-system experiment runner.

A :class:`Scenario` is a declarative recipe — job source, arrival
process, optional cancellation and failure processes, horizon.
:meth:`Scenario.instantiate` pre-samples the whole timeline from named
:class:`~repro.engine.rng.RngRegistry` substreams into a
:class:`ScenarioInstance` (plain data), and :func:`run_scenario` feeds
that instance through one :class:`~repro.core.system.SchedulingSystem`:
arrivals ride the system's existing ``arrival_times`` path, disruptions
become simulator events against ``cancel_job`` / ``fail_processor`` /
``recover_processor``.

Determinism contract: the instance depends only on
``(scenario name, seed, n_processors)`` — never on the policy (common
random numbers across the policy axis) or on the worker count of the
sweep.  :func:`run_matrix` fans the (scenario × policy) grid out over
seeds with the PR 1 parallel runner; per-cell metrics merge in seed
order, so ``workers=N`` output is bit-identical to serial.
"""

from __future__ import annotations

import dataclasses
import functools
import math
import typing

from repro.core.policies.base import Policy
from repro.core.system import SchedulingSystem, SystemResult
from repro.engine.parallel import map_replications, resolve_workers
from repro.engine.rng import RngRegistry
from repro.machine.params import SEQUENT_SYMMETRY, MachineSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    HeartbeatEmitter,
    TelemetryChannel,
    TelemetrySink,
)
from repro.sweep.spec import normalize_seeds
from repro.threads.job import Job
from repro.workloads.opensys.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
)
from repro.workloads.opensys.disruptions import (
    CancellationProcess,
    CpuOutage,
    FailureProcess,
)
from repro.workloads.opensys.jobsource import AppJobSource, JobSource, lite_source

#: Cancellation and failure events fire after any arrival at the same
#: instant (arrivals use priority 10) — a cancellation *colliding* with
#: its job's arrival cancels an already-arrived job.  Tests cover the
#: opposite order explicitly via a lower priority.
DISRUPTION_PRIORITY = 100


@dataclasses.dataclass(frozen=True)
class ScenarioInstance:
    """One fully-sampled open-system timeline (plain data, policy-free)."""

    name: str
    seed: int
    jobs: typing.Tuple[Job, ...]
    arrival_times: typing.Tuple[float, ...]
    #: (job index, time) pairs
    cancellations: typing.Tuple[typing.Tuple[int, float], ...]
    outages: typing.Tuple[CpuOutage, ...]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A declarative open-system scenario recipe."""

    name: str
    source: JobSource
    arrivals: ArrivalProcess
    horizon_s: float
    #: truncate the arrival stream (0 = unlimited); the run itself always
    #: drains to completion so the trace ends oracle-clean
    max_jobs: int = 0
    cancellations: typing.Optional[CancellationProcess] = None
    failures: typing.Optional[FailureProcess] = None
    note: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenarios need a name")
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if self.max_jobs < 0:
            raise ValueError("max_jobs must be non-negative")

    def instantiate(
        self,
        seed: int,
        n_processors: int = 16,
        machine: MachineSpec = SEQUENT_SYMMETRY,
    ) -> ScenarioInstance:
        """Pre-sample the whole timeline for ``seed``.

        Substreams: ``arrivals`` (times), ``job/<i>`` (each job's shape
        and jitter), ``cancel`` and ``failures`` (disruptions) — all
        under ``opensys/<scenario name>``, so scenarios never share
        randomness and the draw order is independent of consumption
        order.
        """
        registry = RngRegistry(seed).spawn(f"opensys/{self.name}")
        times = self.arrivals.times(registry.stream("arrivals"), self.horizon_s)
        if self.max_jobs:
            times = times[: self.max_jobs]
        if not times:
            raise ValueError(
                f"scenario {self.name!r} produced no arrivals over "
                f"{self.horizon_s}s (seed {seed}); raise the rate or horizon"
            )
        jobs = tuple(
            self.source.make_job(i, registry, n_processors, machine)
            for i in range(len(times))
        )
        cancellations: typing.Tuple[typing.Tuple[int, float], ...] = ()
        if self.cancellations is not None:
            cancellations = self.cancellations.sample(
                registry.stream("cancel"), times
            )
        outages: typing.Tuple[CpuOutage, ...] = ()
        if self.failures is not None:
            outages = self.failures.sample(
                registry.stream("failures"), self.horizon_s, n_processors
            )
        return ScenarioInstance(
            name=self.name,
            seed=seed,
            jobs=jobs,
            arrival_times=tuple(times),
            cancellations=cancellations,
            outages=outages,
        )


#: Anything run_scenario can execute: a Scenario or a pre-built adapter
#: with the same instantiate() surface (e.g. swf.SwfScenario).
ScenarioLike = typing.Union[Scenario, "typing.Any"]


def quantile(sorted_values: typing.Sequence[float], q: float) -> float:
    """Exact order statistic: the smallest value covering fraction ``q``."""
    if not 0 <= q <= 1:
        raise ValueError("q must be in [0, 1]")
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[index]


@dataclasses.dataclass(frozen=True)
class OpenSystemResult:
    """Outcome of one (scenario, policy, seed) cell."""

    scenario: str
    policy: str
    seed: int
    n_processors: int
    makespan: float
    n_jobs: int
    n_completed: int
    n_cancelled: int
    #: completed jobs' response times, ascending
    response_times: typing.Tuple[float, ...]
    #: processor-seconds of useful work (completed + partial cancelled)
    total_work: float
    total_reallocations: int
    n_failures: int
    #: the underlying closed-system result (exact replay target)
    system: SystemResult

    @property
    def utilization(self) -> float:
        """Useful work over offered capacity, ``work / (P x makespan)``."""
        if self.makespan <= 0:
            return 0.0
        return self.total_work / (self.n_processors * self.makespan)

    def mean_response_time(self) -> float:
        """Mean response time over completed jobs."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def response_quantile(self, q: float) -> float:
        """Exact response-time quantile over completed jobs."""
        return quantile(self.response_times, q)


def run_scenario(
    scenario: ScenarioLike,
    policy: Policy,
    seed: int = 0,
    n_processors: int = 16,
    machine: MachineSpec = SEQUENT_SYMMETRY,
    tracer: typing.Optional[object] = None,
    metrics: typing.Optional[MetricsRegistry] = None,
    profiler: typing.Optional[object] = None,
    heartbeat: typing.Optional[HeartbeatEmitter] = None,
) -> OpenSystemResult:
    """Instantiate ``scenario`` for ``seed`` and run it under ``policy``.

    The run drains to completion (no horizon cutoff), so the emitted
    trace satisfies the run-end invariants and replays exactly.
    ``heartbeat`` (a :class:`~repro.obs.telemetry.HeartbeatEmitter`)
    rides the engine trace hook for live progress; it observes only and
    never changes the result.
    """
    instance = scenario.instantiate(seed, n_processors=n_processors, machine=machine)
    registry = RngRegistry(seed)
    system = SchedulingSystem(
        list(instance.jobs),
        policy,
        machine=machine,
        n_processors=n_processors,
        seed=seed,
        rng=registry.spawn(f"system/{policy.name}"),
        arrival_times=list(instance.arrival_times),
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )
    for index, when in instance.cancellations:
        job = system.jobs[index]
        system.sim.at(
            when,
            lambda j=job: system.cancel_job(j),
            priority=DISRUPTION_PRIORITY,
            label=f"cancel:{job.name}",
        )
    for outage in instance.outages:
        system.sim.at(
            outage.fail_s,
            lambda c=outage.cpu: system.fail_processor(c),
            priority=DISRUPTION_PRIORITY,
            label=f"cpu_fail:{outage.cpu}",
        )
        system.sim.at(
            outage.recover_s,
            lambda c=outage.cpu: system.recover_processor(c),
            priority=DISRUPTION_PRIORITY,
            label=f"cpu_recover:{outage.cpu}",
        )
    if heartbeat is not None:
        system.sim.add_trace_hook(heartbeat.engine_hook)
    result = system.run()
    if heartbeat is not None:
        heartbeat.finish(result.makespan)
    responses = tuple(sorted(m.response_time for m in result.jobs.values()))
    cancelled_work = sum(
        job.work_done for job in system.jobs if job.cancelled
    )
    return OpenSystemResult(
        scenario=instance.name,
        policy=policy.name,
        seed=seed,
        n_processors=n_processors,
        makespan=result.makespan,
        n_jobs=len(instance.jobs),
        n_completed=len(result.jobs),
        n_cancelled=len(result.cancelled),
        response_times=responses,
        total_work=sum(m.work for m in result.jobs.values()) + cancelled_work,
        total_reallocations=sum(m.n_reallocations for m in result.jobs.values()),
        n_failures=len(instance.outages),
        system=result,
    )


# ---------------------------------------------------------------------- #
# the (policy x scenario x seed) matrix


@dataclasses.dataclass(frozen=True)
class CellSummary:
    """Seed-aggregated summary of one (scenario, policy) cell."""

    scenario: str
    policy: str
    n_jobs: int
    n_completed: int
    n_cancelled: int
    n_failures: int
    mean_response: float
    p50_response: float
    p90_response: float
    p99_response: float
    mean_utilization: float
    total_reallocations: int

    @classmethod
    def from_results(
        cls, results: typing.Sequence[OpenSystemResult]
    ) -> "CellSummary":
        """Pool completed-job response times across the cell's seeds."""
        if not results:
            raise ValueError("a cell needs at least one result")
        pooled = sorted(t for r in results for t in r.response_times)
        mean = sum(pooled) / len(pooled) if pooled else 0.0
        return cls(
            scenario=results[0].scenario,
            policy=results[0].policy,
            n_jobs=sum(r.n_jobs for r in results),
            n_completed=sum(r.n_completed for r in results),
            n_cancelled=sum(r.n_cancelled for r in results),
            n_failures=sum(r.n_failures for r in results),
            mean_response=mean,
            p50_response=quantile(pooled, 0.50),
            p90_response=quantile(pooled, 0.90),
            p99_response=quantile(pooled, 0.99),
            mean_utilization=sum(r.utilization for r in results) / len(results),
            total_reallocations=sum(r.total_reallocations for r in results),
        )


@dataclasses.dataclass(frozen=True)
class MatrixComparison:
    """Everything one :func:`run_matrix` sweep produced."""

    seeds: typing.Tuple[int, ...]
    scenarios: typing.Tuple[str, ...]
    policies: typing.Tuple[str, ...]
    #: (scenario, policy) -> per-seed results, in seed order
    results: typing.Dict[typing.Tuple[str, str], typing.Tuple[OpenSystemResult, ...]]
    cells: typing.Dict[typing.Tuple[str, str], CellSummary]
    #: (scenario, policy) -> merged metrics snapshot (collect_metrics only)
    metrics: typing.Dict[typing.Tuple[str, str], typing.Dict[str, object]]


def _run_seed_batch(
    replication: int,
    scenarios: typing.Tuple[ScenarioLike, ...],
    policies: typing.Tuple[Policy, ...],
    seed_values: typing.Tuple[int, ...],
    n_processors: int,
    machine: MachineSpec,
    collect_metrics: bool,
    telemetry_sink: typing.Optional[TelemetrySink] = None,
) -> typing.Dict[typing.Tuple[str, str], typing.Tuple[OpenSystemResult, object]]:
    """All (scenario x policy) cells for one seed (one parallel task).

    Module-level so :func:`~repro.engine.parallel.map_replications` can
    pickle it into worker processes.  With a ``telemetry_sink``, each
    cell streams heartbeats home labelled ``scenario/policy/seedN``.
    """
    seed = seed_values[replication]
    out: typing.Dict[
        typing.Tuple[str, str], typing.Tuple[OpenSystemResult, object]
    ] = {}
    for scenario in scenarios:
        for policy in policies:
            registry = MetricsRegistry() if collect_metrics else None
            heartbeat = None
            if telemetry_sink is not None:
                heartbeat = HeartbeatEmitter(
                    telemetry_sink,
                    label=f"{scenario.name}/{policy.name}/seed{seed}",
                )
            result = run_scenario(
                scenario,
                policy,
                seed=seed,
                n_processors=n_processors,
                machine=machine,
                metrics=registry,
                heartbeat=heartbeat,
            )
            snapshot = registry.snapshot() if registry is not None else None
            out[(result.scenario, policy.name)] = (result, snapshot)
    return out


def run_matrix(
    scenarios: typing.Sequence[ScenarioLike],
    policies: typing.Sequence[Policy],
    seeds: typing.Union[int, typing.Sequence[int]] = 3,
    base_seed: int = 0,
    n_processors: int = 16,
    machine: MachineSpec = SEQUENT_SYMMETRY,
    workers: typing.Optional[int] = None,
    collect_metrics: bool = False,
    telemetry: typing.Optional[TelemetrySink] = None,
    on_commit: typing.Optional[typing.Callable[[int, object], None]] = None,
) -> MatrixComparison:
    """Run the (scenario x policy x seed) grid, optionally in parallel.

    ``seeds`` is either a count (``3`` runs ``base_seed .. base_seed+2``)
    or an explicit seed list; duplicates are rejected by the shared
    :func:`~repro.sweep.spec.normalize_seeds` validator, since a repeated
    seed reruns the identical simulation and double-weights it in every
    pooled statistic.

    Parallelism is over seeds (one task per seed runs every cell), with
    results committed in seed order — output is bit-identical for any
    ``workers``.

    ``telemetry`` receives live :class:`~repro.obs.telemetry.TelemetrySnapshot`
    heartbeats from every cell (across process boundaries when
    ``workers > 1``); ``on_commit(seed_index, batch)`` fires as each
    seed's batch commits, in seed order.  Both are observational only —
    attaching them never changes the sweep's results.
    """
    seed_values = normalize_seeds(seeds, base_seed)
    if not scenarios or not policies:
        raise ValueError("need at least one scenario and one policy")
    channel = (
        TelemetryChannel(resolve_workers(workers), telemetry)
        if telemetry is not None
        else None
    )
    try:
        run_once = functools.partial(
            _run_seed_batch,
            scenarios=tuple(scenarios),
            policies=tuple(policies),
            seed_values=seed_values,
            n_processors=n_processors,
            machine=machine,
            collect_metrics=collect_metrics,
            telemetry_sink=channel.sink if channel is not None else None,
        )
        batches = map_replications(
            run_once, len(seed_values), workers=workers, on_commit=on_commit
        )
    finally:
        if channel is not None:
            channel.close()

    results: typing.Dict[
        typing.Tuple[str, str], typing.List[OpenSystemResult]
    ] = {}
    merged: typing.Dict[typing.Tuple[str, str], MetricsRegistry] = {}
    scenario_names: typing.List[str] = []
    for batch in batches:  # seed order == commit order
        for key, (result, snapshot) in batch.items():
            results.setdefault(key, []).append(result)
            if key[0] not in scenario_names:
                scenario_names.append(key[0])
            if collect_metrics and snapshot is not None:
                merged.setdefault(key, MetricsRegistry()).merge_snapshot(
                    typing.cast(typing.Dict[str, object], snapshot)
                )
    cells = {
        key: CellSummary.from_results(cell_results)
        for key, cell_results in results.items()
    }
    return MatrixComparison(
        seeds=seed_values,
        scenarios=tuple(scenario_names),
        policies=tuple(p.name for p in policies),
        results={key: tuple(value) for key, value in results.items()},
        cells=cells,
        metrics={key: registry.snapshot() for key, registry in merged.items()},
    )


# ---------------------------------------------------------------------- #
# built-in scenarios


def built_in_scenarios(
    lite: bool = False,
    n_processors: int = 16,
    utilization: float = 0.5,
) -> "typing.Dict[str, Scenario]":
    """The four standard open-system scenario shapes.

    ``steady`` (Poisson at the target utilization), ``bursty`` (on/off
    modulated), ``cancellations`` (steady plus a 30 % cancellation
    stream), and ``failures`` (steady plus CPU outages).  With
    ``lite=True`` jobs come from the small synthetic templates and a
    short horizon — the variant the tier-1 oracle matrix sweeps; the
    default samples the real application specs.
    """
    if lite:
        source: JobSource = lite_source()
        horizon = 6.0
        max_jobs = 40
    else:
        source = AppJobSource.uniform()
        horizon = 400.0
        max_jobs = 12
    mean_work = source.mean_work_s()
    steady = PoissonArrivals.for_utilization(utilization, mean_work, n_processors)
    scenarios = {
        "steady": Scenario(
            name="steady",
            source=source,
            arrivals=steady,
            horizon_s=horizon,
            max_jobs=max_jobs,
            note="Poisson arrivals at the target utilization",
        ),
        "bursty": Scenario(
            name="bursty",
            source=source,
            arrivals=BurstyArrivals(
                burst_rate_per_s=2.0 * steady.rate_per_s,
                idle_rate_per_s=0.1 * steady.rate_per_s,
                mean_burst_s=horizon / 8.0,
                mean_idle_s=horizon / 8.0,
            ),
            horizon_s=horizon,
            max_jobs=max_jobs,
            note="on/off bursts at 2x the steady rate",
        ),
        "cancellations": Scenario(
            name="cancellations",
            source=source,
            arrivals=steady,
            horizon_s=horizon,
            max_jobs=max_jobs,
            cancellations=CancellationProcess(
                probability=0.3, mean_delay_s=0.5 * mean_work
            ),
            note="steady arrivals, ~30% of jobs cancelled mid-flight",
        ),
        "failures": Scenario(
            name="failures",
            source=source,
            arrivals=steady,
            horizon_s=horizon,
            max_jobs=max_jobs,
            failures=FailureProcess(
                rate_per_s=4.0 / horizon,
                mean_repair_s=horizon / 10.0,
                max_concurrent=2,
            ),
            note="steady arrivals under CPU failure/recovery",
        ),
    }
    return scenarios
