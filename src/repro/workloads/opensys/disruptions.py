"""Disruption processes: job cancellations and CPU failure/recovery.

Like the arrival processes, these are *pre-sampled*: the whole
disruption timeline is drawn from named rng substreams before the
simulation starts, and delivered as plain data
(``(job index, time)`` pairs and :class:`CpuOutage` windows).  The
scenario runner turns them into simulator events against
:meth:`~repro.core.system.SchedulingSystem.cancel_job` /
``fail_processor`` / ``recover_processor``, which ride the engine's
PENDING→FIRED|CANCELLED event lifecycle — a cancellation landing after
its job finished simply finds nothing to do.

Pre-sampling keeps the timeline a pure function of (scenario, seed):
identical for every policy (common random numbers) and for serial vs
parallel sweeps.
"""

from __future__ import annotations

import dataclasses
import random
import typing


@dataclasses.dataclass(frozen=True)
class CpuOutage:
    """One processor outage window ``[fail_s, recover_s)``."""

    cpu: int
    fail_s: float
    recover_s: float


@dataclasses.dataclass(frozen=True)
class CancellationProcess:
    """Each arriving job is independently cancelled with ``probability``,
    an exponential ``mean_delay_s`` after its arrival time.

    A sampled cancellation may land before the arrival event fires at the
    same instant (delay 0 is possible through event ordering), after the
    job completed (a no-op), or mid-run — all three paths are exercised
    by the oracle matrix.
    """

    probability: float
    mean_delay_s: float

    def __post_init__(self) -> None:
        if not 0 <= self.probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        if self.mean_delay_s <= 0:
            raise ValueError("mean_delay_s must be positive")

    def sample(
        self, rng: random.Random, arrival_times: typing.Sequence[float]
    ) -> typing.Tuple[typing.Tuple[int, float], ...]:
        """``(job index, cancellation time)`` pairs, in arrival order."""
        out: typing.List[typing.Tuple[int, float]] = []
        for index, arrival in enumerate(arrival_times):
            if rng.random() < self.probability:
                delay = rng.expovariate(1.0 / self.mean_delay_s)
                out.append((index, arrival + delay))
        return tuple(out)


@dataclasses.dataclass(frozen=True)
class FailureProcess:
    """Poisson CPU failures at ``rate_per_s`` with exponential repair.

    At each failure instant a processor is chosen uniformly among those
    currently online in the sampled timeline; at most ``max_concurrent``
    processors are ever down together (excess failure draws are dropped,
    keeping the machine schedulable).
    """

    rate_per_s: float
    mean_repair_s: float
    max_concurrent: int = 1

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("failure rate must be positive")
        if self.mean_repair_s <= 0:
            raise ValueError("mean repair time must be positive")
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")

    def sample(
        self, rng: random.Random, horizon_s: float, n_processors: int
    ) -> typing.Tuple[CpuOutage, ...]:
        """Outage windows over ``[0, horizon_s)``, in failure order."""
        if n_processors <= 1:
            raise ValueError("failure scenarios need at least 2 processors")
        limit = min(self.max_concurrent, n_processors - 1)
        outages: typing.List[CpuOutage] = []
        t = 0.0
        while True:
            t += rng.expovariate(self.rate_per_s)
            if t >= horizon_s:
                return tuple(outages)
            down = [o for o in outages if o.fail_s <= t < o.recover_s]
            if len(down) >= limit:
                continue
            down_cpus = {o.cpu for o in down}
            candidates = [c for c in range(n_processors) if c not in down_cpus]
            cpu = candidates[rng.randrange(len(candidates))]
            repair = rng.expovariate(1.0 / self.mean_repair_s)
            outages.append(CpuOutage(cpu=cpu, fail_s=t, recover_s=t + repair))
