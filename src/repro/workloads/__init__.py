"""Workload layers: generators that feed jobs into the scheduling core.

The paper's own experiments are *closed*: six fixed mixes of three
applications, all arriving at t = 0.  This package holds the layers that
go beyond that — currently :mod:`repro.workloads.opensys`, the
open-system layer (stochastic arrivals, disruptions, and workload-trace
replay).
"""
